// Differential-testing hardening: with every injected bug disabled, the
// substrate cores must be architecturally bit-equivalent to the golden
// ISS on randomized instruction programs — commit-by-commit and in final
// architectural state. This is the soundness bedrock of every detection
// result in the repo: a clean-core divergence would count as a "bug
// detection" no injected bug caused.

#include <gtest/gtest.h>

#include <string>

#include "fuzz/backend.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/seedgen.hpp"
#include "golden/iss.hpp"
#include "isa/decoded_program.hpp"
#include "mutation/engine.hpp"
#include "soc/cores.hpp"
#include "soc/pipeline.hpp"

namespace mabfuzz {
namespace {

std::string core_param_name(
    const ::testing::TestParamInfo<soc::CoreKind>& info) {
  return std::string(soc::core_name(info.param));
}

class CleanCoreDifferential : public ::testing::TestWithParam<soc::CoreKind> {};

TEST_P(CleanCoreDifferential, RandomSeedProgramsMatchGoldenIss) {
  const soc::CoreKind kind = GetParam();
  golden::Iss iss(soc::golden_config_for(kind));
  soc::Pipeline dut(soc::core_params(kind, soc::BugSet::none()));
  fuzz::SeedGenerator gen(fuzz::SeedGenConfig{},
                          common::make_stream(2024, 0, "differential"));

  for (int t = 0; t < 60; ++t) {
    const std::vector<isa::Word> program = gen.next_program();
    const soc::RunOutput dut_out = dut.run(program);
    const isa::ArchResult golden = iss.run(program);

    const auto mismatch = fuzz::compare(dut_out.arch, golden);
    ASSERT_FALSE(mismatch.has_value())
        << soc::core_name(kind) << " diverged on clean-core program " << t
        << ": " << mismatch->description;
    EXPECT_TRUE(dut_out.firings.empty())
        << "disabled bugs must never fire (program " << t << ")";

    // compare() is the oracle of record; cross-check the raw final state
    // so an oracle gap can't mask a real divergence.
    EXPECT_EQ(dut_out.arch.regs, golden.regs) << "program " << t;
    EXPECT_EQ(dut_out.arch.instret, golden.instret) << "program " << t;
    EXPECT_EQ(dut_out.arch.halt, golden.halt) << "program " << t;
    EXPECT_EQ(dut_out.arch.commits.size(), golden.commits.size())
        << "program " << t;
    EXPECT_EQ(dut_out.arch.mcause, golden.mcause) << "program " << t;
    EXPECT_EQ(dut_out.arch.mepc, golden.mepc) << "program " << t;
  }
}

TEST_P(CleanCoreDifferential, MutatedProgramsMatchGoldenIss) {
  // Mutation injects illegal encodings and wild control flow — the trap
  // and halt paths must agree between the pair as well.
  const soc::CoreKind kind = GetParam();
  golden::Iss iss(soc::golden_config_for(kind));
  soc::Pipeline dut(soc::core_params(kind, soc::BugSet::none()));
  fuzz::SeedGenerator gen(fuzz::SeedGenConfig{},
                          common::make_stream(2024, 1, "differential-seed"));
  mutation::Engine engine(mutation::EngineConfig{},
                          common::make_stream(2024, 1, "differential-mut"));

  int trapping_programs = 0;
  for (int t = 0; t < 40; ++t) {
    std::vector<isa::Word> program = gen.next_program();
    // A short mutation chain drifts well away from well-formed code.
    for (int m = 0; m < 3; ++m) {
      program = engine.mutate(program);
    }
    const soc::RunOutput dut_out = dut.run(program);
    const isa::ArchResult golden = iss.run(program);

    const auto mismatch = fuzz::compare(dut_out.arch, golden);
    ASSERT_FALSE(mismatch.has_value())
        << soc::core_name(kind) << " diverged on mutated program " << t
        << ": " << mismatch->description;
    EXPECT_EQ(dut_out.arch.regs, golden.regs) << "program " << t;
    EXPECT_EQ(dut_out.arch.mcause, golden.mcause) << "program " << t;
    EXPECT_EQ(dut_out.arch.mtval, golden.mtval) << "program " << t;
    for (const isa::CommitRecord& record : golden.commits) {
      trapping_programs += record.trapped ? 1 : 0;
    }
  }
  // The guard that keeps this suite honest: mutation must actually have
  // exercised trap paths, or the agreement above proves nothing new.
  EXPECT_GT(trapping_programs, 0);
}

INSTANTIATE_TEST_SUITE_P(AllCores, CleanCoreDifferential,
                         ::testing::ValuesIn(soc::kAllCores), core_param_name);

// --- decode-cache / execution-context equivalence --------------------------------
//
// The execution-engine refactor introduced (a) a pre-decoded hot path
// (isa::DecodedProgram shared by ISS and pipeline), (b) dirty-region DRAM
// reset, and (c) reused run buffers. None of it may change any architectural
// bit: the pre-decoded overloads must be bit-identical to the per-word-decode
// reference path, on clean cores AND with every injected bug enabled, and a
// backend whose ExecutionContext is reused across many tests must produce
// the same outcomes as a backend constructed fresh for each test.

class DecodeCacheEquivalence : public ::testing::TestWithParam<soc::CoreKind> {};

// One comparison: reference (decode-per-word) vs pre-decoded (shared cache);
// both sides run through the buffer-reuse overloads, so reuse and caching
// are exercised together.
void expect_predecoded_equivalent(soc::CoreKind kind, const soc::BugSet& bugs,
                                  const std::vector<isa::Word>& program,
                                  soc::Pipeline& dut_ref, soc::Pipeline& dut_pre,
                                  golden::Iss& iss_ref, golden::Iss& iss_pre,
                                  isa::DecodedProgram& decoded,
                                  soc::RunOutput& ref, soc::RunOutput& dut_out,
                                  isa::ArchResult& iss_ref_out,
                                  isa::ArchResult& iss_out, int t) {
  // The reference side uses the decode-per-word *buffer-reuse* overloads —
  // both halves of the refactor (reuse and cache) are under test here.
  dut_ref.run(program, ref);
  decoded.build(program);
  dut_pre.run(program, decoded, dut_out);
  ASSERT_EQ(ref.arch.commits, dut_out.arch.commits)
      << soc::core_name(kind) << (bugs.empty() ? " (clean)" : " (default bugs)")
      << ": pre-decoded pipeline commit trace diverged on program " << t;
  EXPECT_EQ(ref.arch.regs, dut_out.arch.regs);
  EXPECT_EQ(ref.arch.instret, dut_out.arch.instret);
  EXPECT_EQ(ref.arch.halt, dut_out.arch.halt);
  EXPECT_EQ(ref.arch.mstatus, dut_out.arch.mstatus);
  EXPECT_EQ(ref.arch.mepc, dut_out.arch.mepc);
  EXPECT_EQ(ref.arch.mcause, dut_out.arch.mcause);
  EXPECT_EQ(ref.arch.mtval, dut_out.arch.mtval);
  EXPECT_EQ(ref.arch.mscratch, dut_out.arch.mscratch);
  EXPECT_EQ(ref.cycles, dut_out.cycles) << "cycle annotation diverged";
  EXPECT_EQ(ref.firings, dut_out.firings) << "bug firing log diverged";
  EXPECT_TRUE(ref.test_coverage == dut_out.test_coverage)
      << "coverage bitmap diverged on program " << t;

  iss_ref.run(program, iss_ref_out);
  iss_pre.run(program, decoded, iss_out);
  ASSERT_EQ(iss_ref_out.commits, iss_out.commits)
      << soc::core_name(kind)
      << ": pre-decoded ISS commit trace diverged on program " << t;
  EXPECT_EQ(iss_ref_out.regs, iss_out.regs);
  EXPECT_EQ(iss_ref_out.instret, iss_out.instret);
  EXPECT_EQ(iss_ref_out.halt, iss_out.halt);
  EXPECT_EQ(iss_ref_out.mcause, iss_out.mcause);
  EXPECT_EQ(iss_ref_out.mtval, iss_out.mtval);
}

TEST_P(DecodeCacheEquivalence, PreDecodedPathMatchesPerWordDecode) {
  const soc::CoreKind kind = GetParam();
  // Default (paper) bug set: V1-V6 on CVA6, V7 on Rocket, none on BOOM —
  // the injected-bug behaviours must be bit-exact through the cache too.
  const soc::BugSet bugs = soc::default_bugs(kind);
  soc::Pipeline dut_ref(soc::core_params(kind, bugs));
  soc::Pipeline dut_pre(soc::core_params(kind, bugs));
  golden::Iss iss_ref(soc::golden_config_for(kind));
  golden::Iss iss_pre(soc::golden_config_for(kind));
  fuzz::SeedGenerator gen(fuzz::SeedGenConfig{},
                          common::make_stream(4242, 0, "decode-cache"));
  mutation::Engine engine(mutation::EngineConfig{},
                          common::make_stream(4242, 0, "decode-cache-mut"));

  // One cache and one set of output buffers reused for the whole suite
  // (on BOTH sides): exactly the Backend::run_test ownership pattern.
  isa::DecodedProgram decoded;
  soc::RunOutput ref_out;
  soc::RunOutput dut_out;
  isa::ArchResult iss_ref_out;
  isa::ArchResult iss_out;

  for (int t = 0; t < 25; ++t) {
    std::vector<isa::Word> program = gen.next_program();
    if (t % 2 == 1) {
      // Mutated programs inject illegal encodings and wild control flow —
      // the cache must agree on the trap paths as well.
      for (int m = 0; m < 3; ++m) {
        program = engine.mutate(program);
      }
    }
    expect_predecoded_equivalent(kind, bugs, program, dut_ref, dut_pre, iss_ref,
                                 iss_pre, decoded, ref_out, dut_out,
                                 iss_ref_out, iss_out, t);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCores, DecodeCacheEquivalence,
                         ::testing::ValuesIn(soc::kAllCores), core_param_name);

// A backend reusing its ExecutionContext (decode cache + run buffers +
// dirty-region DRAM) across a long test sequence must report exactly what a
// backend constructed from scratch for every single test reports.
TEST(ExecutionContextReuse, ReusedBackendMatchesFreshBackendPerTest) {
  fuzz::BackendConfig config;
  config.core = soc::CoreKind::kCva6;
  config.bugs = soc::default_bugs(soc::CoreKind::kCva6);
  config.rng_seed = 99;
  fuzz::Backend reused(config);

  // Programs generated outside the backends so both sides execute the very
  // same words (ids do not influence execution).
  fuzz::SeedGenerator gen(fuzz::SeedGenConfig{},
                          common::make_stream(99, 0, "ctx-reuse"));
  mutation::Engine engine(mutation::EngineConfig{},
                          common::make_stream(99, 0, "ctx-reuse-mut"));

  fuzz::TestOutcome outcome;  // reused across all iterations
  for (int t = 0; t < 30; ++t) {
    fuzz::TestCase test;
    test.id = static_cast<std::uint64_t>(t) + 1;
    test.words = gen.next_program();
    if (t % 3 == 2) {
      test.words = engine.mutate(test.words);
    }

    reused.run_test(test, outcome);
    fuzz::Backend fresh(config);
    const fuzz::TestOutcome expected = fresh.run_test(test);

    ASSERT_TRUE(expected.coverage == outcome.coverage)
        << "coverage diverged on test " << t;
    EXPECT_EQ(expected.mismatch, outcome.mismatch) << "test " << t;
    EXPECT_EQ(expected.mismatch_description, outcome.mismatch_description);
    EXPECT_EQ(expected.mismatch_commit, outcome.mismatch_commit);
    EXPECT_EQ(expected.firings, outcome.firings) << "test " << t;
    EXPECT_EQ(expected.dut_cycles, outcome.dut_cycles) << "test " << t;
    EXPECT_EQ(expected.commits, outcome.commits) << "test " << t;
  }
  // The reused context must actually have been reused (cache warm across
  // tests), or this test proves nothing about the scratch path.
  EXPECT_GT(reused.execution_context().decoded.lookups(),
            reused.execution_context().decoded.misses());
}

TEST(DifferentialOracle, EnabledBugStillDiverges) {
  // Sanity inversion: the equivalence above must come from the cores
  // being clean, not from an oracle that never fires. V5 (silent load
  // fault) diverges quickly on CVA6 under random load-heavy programs.
  golden::Iss iss(soc::golden_config_for(soc::CoreKind::kCva6));
  soc::Pipeline dut(soc::core_params(
      soc::CoreKind::kCva6, soc::BugSet::single(soc::BugId::kV5SilentLoadFault)));
  fuzz::SeedGenConfig seed_config;
  seed_config.w_load = 40;  // bias toward loads to trigger V5 fast
  fuzz::SeedGenerator gen(seed_config, common::make_stream(2024, 2, "diff-bug"));

  bool diverged = false;
  for (int t = 0; t < 200 && !diverged; ++t) {
    const std::vector<isa::Word> program = gen.next_program();
    const soc::RunOutput dut_out = dut.run(program);
    const isa::ArchResult golden = iss.run(program);
    diverged = fuzz::compare(dut_out.arch, golden).has_value();
  }
  EXPECT_TRUE(diverged) << "V5 never diverged: the oracle is vacuous";
}

}  // namespace
}  // namespace mabfuzz
