// Checkpoint-v1 tests: struct round-trip through the binary format,
// corruption rejection (truncation at every byte boundary, bit flips,
// bad magic/version — always a descriptive throw, never partial state),
// verified-replay resume equivalence (a resumed campaign finishes with
// exactly the state of an uninterrupted one), and divergence detection
// when the config or the warm-start corpus drifted under a checkpoint.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "harness/campaign.hpp"
#include "harness/checkpoint.hpp"

namespace mabfuzz::harness {
namespace {

CampaignConfig tiny(std::string fuzzer, std::uint64_t tests = 120) {
  CampaignConfig config;
  config.fuzzer = std::move(fuzzer);
  config.core = soc::CoreKind::kRocket;
  config.max_tests = tests;
  config.rng_seed = 11;
  config.snapshot_every = 25;
  return config;
}

/// Runs `campaign` forward by exactly `steps` tests without finalizing.
void advance(Campaign& campaign, std::uint64_t steps) {
  const StopCondition never =
      StopCondition::custom("never", [](const Campaign&) { return false; });
  ASSERT_FALSE(campaign.run_slice(never, steps).has_value());
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream out;
  out << is.rdbuf();
  return std::move(out).str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointFormatTest, SaveLoadRoundTripPreservesEveryField) {
  Campaign campaign(tiny("ucb"));
  advance(campaign, 60);
  Checkpoint before = Checkpoint::capture(campaign);
  before.job_name = "job-7";
  before.tenant = "team-a";
  before.artifact_out = "/tmp/out/prefix";

  const std::string path = testing::TempDir() + "roundtrip.ckpt";
  before.save(path);
  const Checkpoint after = Checkpoint::load(path);

  EXPECT_EQ(after.job_name, before.job_name);
  EXPECT_EQ(after.tenant, before.tenant);
  EXPECT_EQ(after.artifact_out, before.artifact_out);
  EXPECT_EQ(after.config_pairs, before.config_pairs);
  EXPECT_EQ(after.steps, before.steps);
  EXPECT_EQ(after.mismatches, before.mismatches);
  EXPECT_EQ(after.first_detection, before.first_detection);
  EXPECT_EQ(after.snapshots, before.snapshots);
  EXPECT_EQ(after.fuzzer_state, before.fuzzer_state);
  EXPECT_EQ(after.coverage_universe, before.coverage_universe);
  EXPECT_EQ(after.coverage_words, before.coverage_words);
  EXPECT_EQ(after.has_corpus, before.has_corpus);
  EXPECT_EQ(after.corpus_image, before.corpus_image);
}

TEST(CheckpointFormatTest, CaptureRecordsMidRunState) {
  Campaign campaign(tiny("exp3"));
  advance(campaign, 50);
  const Checkpoint checkpoint = Checkpoint::capture(campaign);
  EXPECT_EQ(checkpoint.steps, 50u);
  EXPECT_EQ(checkpoint.snapshots.size(), 2u);  // snapshot-every=25
  EXPECT_FALSE(checkpoint.fuzzer_state.empty());
  EXPECT_EQ(checkpoint.coverage_universe, campaign.coverage_universe());
  EXPECT_FALSE(checkpoint.has_corpus);  // no corpus configured
  EXPECT_EQ(checkpoint.first_detection.size(), soc::kNumBugs);
}

TEST(CheckpointFormatTest, EmbedsCorpusImageWhenConfigured) {
  CampaignConfig config = tiny("ucb");
  config.corpus_out = testing::TempDir() + "embed-corpus.bin";
  Campaign campaign(config);
  advance(campaign, 40);
  const Checkpoint checkpoint = Checkpoint::capture(campaign);
  ASSERT_TRUE(checkpoint.has_corpus);
  // The image is a loadable corpus-v2 store equal to the live one.
  std::istringstream image(checkpoint.corpus_image);
  const fuzz::Corpus decoded = fuzz::Corpus::load(image);
  EXPECT_EQ(decoded, *campaign.corpus());
}

// --- corruption -----------------------------------------------------------------

TEST(CheckpointCorruptionTest, EveryTruncationLengthIsRejected) {
  Campaign campaign(tiny("ucb", 60));
  advance(campaign, 30);
  const std::string path = testing::TempDir() + "trunc.ckpt";
  Checkpoint::capture(campaign).save(path);
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 40u);

  const std::string mutilated = testing::TempDir() + "trunc-cut.ckpt";
  // Every strictly-shorter prefix must throw: the trailing checksum (and
  // before it, the header's payload length) makes truncation detectable
  // at any byte boundary.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    write_file(mutilated, bytes.substr(0, cut));
    EXPECT_THROW((void)Checkpoint::load(mutilated), std::runtime_error)
        << "prefix of " << cut << " bytes parsed successfully";
  }
}

TEST(CheckpointCorruptionTest, BitFlipsAreRejectedEverywhere) {
  Campaign campaign(tiny("thompson", 60));
  advance(campaign, 30);
  const std::string path = testing::TempDir() + "flip.ckpt";
  Checkpoint::capture(campaign).save(path);
  const std::string bytes = read_file(path);

  const std::string mutilated = testing::TempDir() + "flip-bad.ckpt";
  // A flip in the magic/header fails structurally; a flip anywhere in the
  // payload or trailer fails the checksum gate. Stride keeps it fast
  // while still probing every region of the file.
  for (std::size_t at = 0; at < bytes.size(); at += 7) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x20);
    write_file(mutilated, corrupt);
    EXPECT_THROW((void)Checkpoint::load(mutilated), std::runtime_error)
        << "flip at byte " << at << " parsed successfully";
  }
}

TEST(CheckpointCorruptionTest, ErrorsAreDescriptive) {
  const std::string missing = testing::TempDir() + "no-such.ckpt";
  try {
    (void)Checkpoint::load(missing);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos);
  }

  const std::string not_a_checkpoint = testing::TempDir() + "not-ckpt.bin";
  write_file(not_a_checkpoint, "this is not a checkpoint at all");
  try {
    (void)Checkpoint::load(not_a_checkpoint);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }

  Campaign campaign(tiny("ucb", 40));
  advance(campaign, 20);
  const std::string path = testing::TempDir() + "checksum.ckpt";
  Checkpoint::capture(campaign).save(path);
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  write_file(path, bytes);
  try {
    (void)Checkpoint::load(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

// --- resume ---------------------------------------------------------------------

TEST(CheckpointResumeTest, ResumedCampaignFinishesIdenticallyToUninterrupted) {
  const CampaignConfig config = tiny("ucb", 120);

  // Reference: one uninterrupted run.
  Campaign reference(config);
  const RunResult ref_run =
      reference.run_until(StopCondition::max_tests(config.max_tests));

  // Checkpointed: run 47 tests, capture, save, load, resume, finish.
  Campaign interrupted(config);
  advance(interrupted, 47);
  const std::string path = testing::TempDir() + "resume.ckpt";
  Checkpoint::capture(interrupted).save(path);

  const std::unique_ptr<Campaign> resumed =
      resume_campaign(Checkpoint::load(path));
  EXPECT_EQ(resumed->tests_executed(), 47u);
  const RunResult resumed_run =
      resumed->run_until(StopCondition::max_tests(config.max_tests));

  EXPECT_EQ(resumed_run.reason, ref_run.reason);
  EXPECT_EQ(resumed_run.tests_executed, ref_run.tests_executed);
  EXPECT_EQ(resumed_run.covered, ref_run.covered);
  EXPECT_EQ(resumed->snapshots(), reference.snapshots());
  EXPECT_EQ(resumed->mismatches(), reference.mismatches());
  std::string resumed_state;
  std::string reference_state;
  resumed->fuzzer().append_state(resumed_state);
  reference.fuzzer().append_state(reference_state);
  EXPECT_EQ(resumed_state, reference_state);
}

TEST(CheckpointResumeTest, ResumePreservesCorpusByteForByte) {
  CampaignConfig config = tiny("ucb", 90);
  config.corpus_out = testing::TempDir() + "resume-corpus.bin";
  Campaign interrupted(config);
  advance(interrupted, 45);
  const std::string path = testing::TempDir() + "resume-corpus.ckpt";
  Checkpoint::capture(interrupted).save(path);

  const std::unique_ptr<Campaign> resumed =
      resume_campaign(Checkpoint::load(path));
  ASSERT_NE(resumed->corpus(), nullptr);
  EXPECT_EQ(*resumed->corpus(), *interrupted.corpus());
}

TEST(CheckpointResumeTest, ConfigDriftIsDetectedAsDivergence) {
  Campaign campaign(tiny("ucb", 80));
  advance(campaign, 40);
  Checkpoint checkpoint = Checkpoint::capture(campaign);

  // Tamper with the replay cursor: a different seed replays a different
  // campaign, so every witness check must fire.
  for (std::string& pair : checkpoint.config_pairs) {
    if (pair.rfind("seed=", 0) == 0) {
      pair = "seed=999";
    }
  }
  const std::string path = testing::TempDir() + "drift.ckpt";
  checkpoint.save(path);
  try {
    (void)resume_campaign(Checkpoint::load(path));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos);
  }
}

TEST(CheckpointResumeTest, DriftedWarmStartCorpusIsDetected) {
  // Warm-start store: one short campaign writes it.
  const std::string store = testing::TempDir() + "warm-store.bin";
  {
    CampaignConfig seeder = tiny("ucb", 40);
    seeder.corpus_out = store;
    Campaign campaign(seeder);
    (void)campaign.run();
    ASSERT_TRUE(campaign.save_corpus());
  }

  CampaignConfig config = tiny("ucb", 80);
  config.corpus_in = store;
  config.corpus_out = store + ".next";
  Campaign campaign(config);
  advance(campaign, 30);
  const std::string path = testing::TempDir() + "warm.ckpt";
  Checkpoint::capture(campaign).save(path);

  // The corpus-in file drifts between checkpoint and resume: replay now
  // starts from different seeds, which the witness verification catches.
  {
    CampaignConfig seeder = tiny("exp3", 60);
    seeder.rng_seed = 77;
    seeder.corpus_out = store;
    Campaign other(seeder);
    (void)other.run();
    ASSERT_TRUE(other.save_corpus());
  }
  EXPECT_THROW((void)resume_campaign(Checkpoint::load(path)),
               std::runtime_error);
}

TEST(CheckpointResumeTest, ZeroStepCheckpointResumesToFreshCampaign) {
  const CampaignConfig config = tiny("epsilon-greedy", 50);
  Campaign fresh(config);
  const std::string path = testing::TempDir() + "zero.ckpt";
  Checkpoint::capture(fresh).save(path);
  const std::unique_ptr<Campaign> resumed =
      resume_campaign(Checkpoint::load(path));
  EXPECT_EQ(resumed->tests_executed(), 0u);
  const RunResult run = resumed->run();
  Campaign reference(config);
  const RunResult ref = reference.run();
  EXPECT_EQ(run.covered, ref.covered);
  EXPECT_EQ(resumed->snapshots(), reference.snapshots());
}

}  // namespace
}  // namespace mabfuzz::harness
