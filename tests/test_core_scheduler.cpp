// MABFuzz core tests: the reward function, arm lifecycle, and the
// scheduler's end-to-end behaviour (selection, mutation lineage, depletion
// resets, EXP3 normalisation).

#include <gtest/gtest.h>

#include <cmath>

#include "core/arm.hpp"
#include "core/reward.hpp"
#include "core/scheduler.hpp"
#include "mab/epsilon_greedy.hpp"
#include "mab/exp3.hpp"

namespace mabfuzz::core {
namespace {

// --- reward ---------------------------------------------------------------------

coverage::Map map_with(std::size_t universe, std::initializer_list<int> bits) {
  coverage::Map m(universe);
  for (const int b : bits) {
    m.set(static_cast<coverage::PointId>(b));
  }
  return m;
}

TEST(Reward, LocalAndGlobalSplit) {
  // test covers {1,2,3}; arm already has {1}; global already has {1,2}.
  const auto test = map_with(10, {1, 2, 3});
  const auto arm = map_with(10, {1});
  const auto global = map_with(10, {1, 2});
  const RewardBreakdown r = compute_reward(RewardConfig{0.25}, test, arm, global);
  EXPECT_EQ(r.cov_local, 2u);   // {2,3}
  EXPECT_EQ(r.cov_global, 1u);  // {3}
  EXPECT_DOUBLE_EQ(r.reward, 0.25 * 2 + 0.75 * 1);
}

TEST(Reward, GlobalIsSubsetOfLocal) {
  // covG ⊆ covL always holds when arm coverage ⊆ global coverage.
  const auto test = map_with(64, {0, 5, 9, 33});
  const auto arm = map_with(64, {5});
  auto global = map_with(64, {5, 9});
  const RewardBreakdown r = compute_reward(RewardConfig{0.5}, test, arm, global);
  EXPECT_GE(r.cov_local, r.cov_global);
}

TEST(Reward, AlphaExtremes) {
  const auto test = map_with(10, {1, 2});
  const auto arm = map_with(10, {});
  const auto global = map_with(10, {1});
  EXPECT_DOUBLE_EQ(compute_reward(RewardConfig{1.0}, test, arm, global).reward,
                   2.0);  // pure covL
  EXPECT_DOUBLE_EQ(compute_reward(RewardConfig{0.0}, test, arm, global).reward,
                   1.0);  // pure covG
}

TEST(Reward, NoNewCoverageZeroReward) {
  const auto test = map_with(10, {1});
  const auto arm = map_with(10, {1});
  const auto global = map_with(10, {1});
  EXPECT_DOUBLE_EQ(compute_reward(RewardConfig{0.25}, test, arm, global).reward,
                   0.0);
}

// --- arm -------------------------------------------------------------------------

fuzz::TestCase seed_with_id(std::uint64_t id) {
  fuzz::TestCase t;
  t.id = id;
  t.seed_id = id;
  t.words = {0x13};
  return t;
}

TEST(ArmTest, StartsWithSeedInPool) {
  Arm arm(seed_with_id(1), 100, 3);
  EXPECT_TRUE(arm.has_next());
  EXPECT_EQ(arm.next().id, 1u);
  EXPECT_FALSE(arm.has_next());
  EXPECT_EQ(arm.pulls(), 1u);
}

TEST(ArmTest, ResetReplacesEverything) {
  Arm arm(seed_with_id(1), 100, 2);
  (void)arm.next();
  arm.push(seed_with_id(5));
  arm.coverage().set(3);
  arm.record_gain(0);
  arm.reset(seed_with_id(9));
  EXPECT_EQ(arm.seed().id, 9u);
  EXPECT_EQ(arm.next().id, 9u);
  EXPECT_TRUE(arm.coverage().empty());
  EXPECT_EQ(arm.monitor().zero_streak(), 0u);
  EXPECT_EQ(arm.resets(), 1u);
}

TEST(ArmTest, DepletionAfterGammaZeroGains) {
  Arm arm(seed_with_id(1), 100, 2);
  EXPECT_FALSE(arm.record_gain(0));
  EXPECT_TRUE(arm.record_gain(0));
}

// --- scheduler ----------------------------------------------------------------------

fuzz::Backend make_backend(soc::CoreKind core = soc::CoreKind::kCva6,
                           soc::BugSet bugs = soc::BugSet::none()) {
  fuzz::BackendConfig config;
  config.core = core;
  config.bugs = bugs;
  return fuzz::Backend(config);
}

std::unique_ptr<mab::Bandit> make_eps(std::size_t arms) {
  return std::make_unique<mab::EpsilonGreedy>(arms, 0.1,
                                              common::Xoshiro256StarStar(55));
}

TEST(Scheduler, StepsExecuteAndCoverageGrows) {
  auto backend = make_backend();
  MabFuzzConfig config;
  MabScheduler scheduler(backend, make_eps(config.num_arms), config);
  for (int i = 0; i < 100; ++i) {
    const fuzz::StepResult r = scheduler.step();
    EXPECT_EQ(r.test_index, static_cast<std::uint64_t>(i + 1));
    ASSERT_TRUE(r.arm.has_value());
    EXPECT_LT(*r.arm, config.num_arms);
  }
  EXPECT_GT(scheduler.accumulated().covered(), 0u);
}

TEST(Scheduler, NameReflectsBandit) {
  auto backend = make_backend();
  MabFuzzConfig config;
  MabScheduler scheduler(backend, make_eps(config.num_arms), config);
  EXPECT_EQ(scheduler.name(), "MABFuzz:epsilon-greedy");
}

TEST(Scheduler, ArmsResetOnDepletion) {
  auto backend = make_backend();
  MabFuzzConfig config;
  config.gamma = 2;  // aggressive resets for the test
  MabScheduler scheduler(backend, make_eps(config.num_arms), config);
  for (int i = 0; i < 600; ++i) {
    scheduler.step();
  }
  // Over 600 pulls with diminishing returns, depleted arms must have been
  // replaced at least once.
  EXPECT_GT(scheduler.total_resets(), 0u);
}

TEST(Scheduler, GammaZeroNeverResets) {
  auto backend = make_backend();
  MabFuzzConfig config;
  config.gamma = 0;
  MabScheduler scheduler(backend, make_eps(config.num_arms), config);
  for (int i = 0; i < 300; ++i) {
    scheduler.step();
  }
  EXPECT_EQ(scheduler.total_resets(), 0u);
}

TEST(Scheduler, ArmPullsAreTracked) {
  auto backend = make_backend();
  MabFuzzConfig config;
  config.num_arms = 4;
  MabScheduler scheduler(backend, make_eps(4), config);
  for (int i = 0; i < 80; ++i) {
    scheduler.step();
  }
  std::uint64_t total_pulls = 0;
  for (std::size_t a = 0; a < 4; ++a) {
    total_pulls += scheduler.arm(a).pulls();
  }
  // Arms that were reset lose their pull count; the sum is bounded by steps.
  EXPECT_LE(total_pulls, 80u);
  EXPECT_GT(total_pulls, 0u);
}

TEST(Scheduler, WorksWithExp3Normalisation) {
  auto backend = make_backend();
  MabFuzzConfig config;
  auto bandit = std::make_unique<mab::Exp3>(config.num_arms, 0.1,
                                            common::Xoshiro256StarStar(77));
  const mab::Exp3* exp3 = bandit.get();
  MabScheduler scheduler(backend, std::move(bandit), config);
  for (int i = 0; i < 200; ++i) {
    scheduler.step();
  }
  // Weights remain finite and form a valid distribution, which they would
  // not if raw (unnormalised) coverage rewards were fed in.
  const auto p = exp3->probabilities();
  double total = 0;
  for (const double v : p) {
    ASSERT_TRUE(std::isfinite(v));
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Scheduler, MismatchedArmCountAborts) {
  auto backend = make_backend();
  MabFuzzConfig config;
  config.num_arms = 10;
  EXPECT_DEATH(MabScheduler(backend, make_eps(3), config), "");
}

TEST(Scheduler, DetectsEasyBug) {
  auto backend =
      make_backend(soc::CoreKind::kCva6,
                   soc::BugSet::single(soc::BugId::kV5SilentLoadFault));
  MabFuzzConfig config;
  MabScheduler scheduler(backend, make_eps(config.num_arms), config);
  bool detected = false;
  for (int i = 0; i < 500 && !detected; ++i) {
    detected = scheduler.step().mismatch;
  }
  EXPECT_TRUE(detected);
}

}  // namespace
}  // namespace mabfuzz::core
