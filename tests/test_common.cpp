// Unit tests for the common substrate: RNG, bit ops, statistics, table
// rendering and CLI parsing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/arena.hpp"
#include "common/bitops.hpp"
#include "common/fastmod.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace mabfuzz::common {
namespace {

// --- RNG ---------------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next();
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256StarStar rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Xoshiro256StarStar rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextRangeInclusive) {
  Xoshiro256StarStar rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256StarStar rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Xoshiro256StarStar rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolApproximatesProbability) {
  Xoshiro256StarStar rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.next_bool(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedSamplingFollowsWeights) {
  Xoshiro256StarStar rng(19);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const std::size_t pick = rng.next_weighted(weights);
    ASSERT_LT(pick, 3u);
    ++counts[pick];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedAllZeroReturnsSize) {
  Xoshiro256StarStar rng(23);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.next_weighted(weights), weights.size());
}

TEST(Rng, ShufflePreservesElements) {
  Xoshiro256StarStar rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, DeriveSeedIsStableAndTagSensitive) {
  const auto a1 = derive_seed(1, 0, "seedgen");
  const auto a2 = derive_seed(1, 0, "seedgen");
  const auto b = derive_seed(1, 0, "mutation");
  const auto c = derive_seed(1, 1, "seedgen");
  const auto d = derive_seed(2, 0, "seedgen");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_NE(a1, c);
  EXPECT_NE(a1, d);
}

// --- bitops ------------------------------------------------------------------

TEST(BitOps, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(12), 0xfffu);
  EXPECT_EQ(low_mask(64), ~0ULL);
  EXPECT_EQ(low_mask(99), ~0ULL);
}

TEST(BitOps, BitsExtract) {
  EXPECT_EQ(bits(0xdeadbeef, 0, 4), 0xfu);
  EXPECT_EQ(bits(0xdeadbeef, 4, 4), 0xeu);
  EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
}

TEST(BitOps, InsertBitsRoundTrip) {
  const std::uint64_t v = insert_bits(0, 12, 8, 0xab);
  EXPECT_EQ(bits(v, 12, 8), 0xabu);
  EXPECT_EQ(insert_bits(v, 12, 8, 0), 0u);
}

TEST(BitOps, SignExtend) {
  EXPECT_EQ(sign_extend(0xfff, 12), -1);
  EXPECT_EQ(sign_extend(0x7ff, 12), 2047);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x0, 12), 0);
  EXPECT_EQ(sign_extend(0xffffffff, 32), -1);
}

TEST(BitOps, Sext32) {
  EXPECT_EQ(sext32(0x80000000ULL), static_cast<std::int64_t>(0xffffffff80000000ULL));
  EXPECT_EQ(sext32(0x7fffffffULL), 0x7fffffffLL);
}

TEST(BitOps, IsAligned) {
  EXPECT_TRUE(is_aligned(8, 4));
  EXPECT_FALSE(is_aligned(10, 4));
  EXPECT_TRUE(is_aligned(0, 8));
}

// --- stats -------------------------------------------------------------------

TEST(Stats, RunningStatsBasics) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, RunningStatsMergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, SummarizeEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
  EXPECT_EQ(s.p25, 0.0);
  EXPECT_EQ(s.p75, 0.0);
}

TEST(Stats, SummarizeSingleSampleIsThatSampleEverywhere) {
  const std::vector<double> v = {42.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.p25, 42.0);
  EXPECT_DOUBLE_EQ(s.p75, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 1.75);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 3.25);
}

TEST(Stats, PercentileEmptyAllRanks) {
  // Regression: the internal percentile_sorted helper computed
  // size() - 1 before checking for emptiness, wrapping to SIZE_MAX.
  // Every rank on an empty sample set must return 0, not crash.
  for (const double p : {0.0, 25.0, 50.0, 75.0, 100.0, -5.0, 300.0}) {
    EXPECT_DOUBLE_EQ(percentile({}, p), 0.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);  // empty
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 100), 7.0);
  // Out-of-range p clamps instead of indexing out of bounds.
  const std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 250), 3.0);
}

TEST(Stats, MedianOddCount) {
  const std::vector<double> v = {5, 1, 3};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  const std::vector<double> v = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, SpeedupRatioGuardsDivisionByZero) {
  EXPECT_DOUBLE_EQ(speedup_ratio(10.0, 4.0), 2.5);
  EXPECT_DOUBLE_EQ(speedup_ratio(4.0, 10.0), 0.4);
  // Zero / negative sides (empty or censored cells) read as "no speedup"
  // rather than dividing by zero.
  EXPECT_DOUBLE_EQ(speedup_ratio(10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(speedup_ratio(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(speedup_ratio(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(speedup_ratio(-1.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(speedup_ratio(5.0, -1.0), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v = {1.0, 100.0};
  EXPECT_NEAR(geometric_mean(v), 10.0, 1e-9);
  const std::vector<double> with_zero = {0.0, 10.0};
  EXPECT_NEAR(geometric_mean(with_zero), 10.0, 1e-9);  // zeros skipped
}

// --- json --------------------------------------------------------------------

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, WriterEmitsCompactNestedStructure) {
  std::ostringstream os;
  JsonWriter json(os, /*pretty=*/false);
  json.begin_object();
  json.key("name").value("ucb");
  json.key("tests").value(std::uint64_t{60});
  json.key("mean").value(2.5);
  json.key("ok").value(true);
  json.key("grid").begin_array();
  json.value(std::uint64_t{1}).value(std::uint64_t{2});
  json.end_array();
  json.end_object();
  EXPECT_EQ(os.str(),
            R"({"name":"ucb","tests":60,"mean":2.5,"ok":true,"grid":[1,2]})");
}

TEST(Json, DoublesAreShortestRoundTripAndNonFiniteIsNull) {
  std::ostringstream os;
  JsonWriter json(os, /*pretty=*/false);
  json.begin_array();
  json.value(0.1);
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(os.str(), "[0.1,null,null]");
}

TEST(Json, StructuralMisuseThrows) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  EXPECT_THROW(json.value("no key"), std::logic_error);
  EXPECT_THROW(json.end_array(), std::logic_error);
  EXPECT_THROW(json.begin_array().key("k"), std::logic_error);
}

// --- table -------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"a", "b"});
  t.add_row({"x,y", "plain"});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.render(os);
  SUCCEED();  // no crash; padding handled
}

TEST(TableFormat, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(3.40, 2), "3.4");
  EXPECT_EQ(format_double(2.00, 2), "2");
  EXPECT_EQ(format_double(0.25, 2), "0.25");
}

TEST(TableFormat, FormatSpeedup) { EXPECT_EQ(format_speedup(3.09), "3.09x"); }

TEST(TableFormat, FormatScientific) {
  EXPECT_EQ(format_scientific(600.0), "6.00e+02");
}

// --- cli ---------------------------------------------------------------------

TEST(Cli, SplitKeepsGetlineSemantics) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("a,", ','), (std::vector<std::string>{"a"}));
  EXPECT_EQ(split(",a", ','), (std::vector<std::string>{"", "a"}));
  EXPECT_EQ(split("", ','), std::vector<std::string>{});
  EXPECT_EQ(split("solo", ','), std::vector<std::string>{"solo"});
}

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--tests", "500", "--alpha=0.25", "--verbose"};
  const CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("tests", 0), 500);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0), 0.25);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "input.txt", "--n", "3", "out.txt"};
  const CliArgs args(5, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "out.txt");
}

TEST(Cli, MalformedNumberThrows) {
  const char* argv[] = {"prog", "--n", "abc"};
  const CliArgs args(3, argv);
  EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a", "yes", "--b", "off"};
  const CliArgs args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
}

// --- arena ------------------------------------------------------------------------

TEST(Arena, SpansAreValueInitializedAndWritable) {
  Arena arena;
  const std::span<std::uint64_t> a = arena.alloc_span<std::uint64_t>(100);
  ASSERT_EQ(a.size(), 100u);
  for (const std::uint64_t x : a) {
    EXPECT_EQ(x, 0u);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = i;
  }
  // A second span must not alias the first.
  const std::span<std::uint64_t> b = arena.alloc_span<std::uint64_t>(100);
  for (const std::uint64_t x : b) {
    EXPECT_EQ(x, 0u);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], i);
  }
  EXPECT_EQ(arena.bytes_allocated(), 200 * sizeof(std::uint64_t));
}

TEST(Arena, ResetRetainsChunkStorage) {
  Arena arena(1024);
  (void)arena.alloc_span<std::byte>(4000);  // spills into multiple chunks
  const std::size_t capacity = arena.capacity();
  const std::size_t chunks = arena.chunk_count();
  EXPECT_GE(capacity, 4000u);
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.capacity(), capacity);  // storage retained, not freed
  // A same-shaped second round fits in the retained chunks.
  (void)arena.alloc_span<std::byte>(4000);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(64);
  const std::span<std::uint32_t> big = arena.alloc_span<std::uint32_t>(1000);
  ASSERT_EQ(big.size(), 1000u);
  big.front() = 1;
  big.back() = 2;
  EXPECT_EQ(big.front(), 1u);
  EXPECT_EQ(big.back(), 2u);
  // Small allocations still work after the oversized one.
  const std::span<std::uint8_t> small = arena.alloc_span<std::uint8_t>(8);
  EXPECT_EQ(small.size(), 8u);
}

TEST(Arena, ZeroCountAndAlignment) {
  Arena arena;
  EXPECT_TRUE(arena.alloc_span<int>(0).empty());
  EXPECT_NE(arena.allocate(0, 1), nullptr);
  // Mixed-alignment sequence: every pointer respects its type's alignment.
  (void)arena.alloc_span<char>(3);
  const std::span<double> d = arena.alloc_span<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
  (void)arena.alloc_span<char>(1);
  const std::span<std::uint64_t> q = arena.alloc_span<std::uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q.data()) % alignof(std::uint64_t),
            0u);
}

TEST(Arena, ReleaseFreesStorage) {
  Arena arena;
  (void)arena.alloc_span<int>(100);
  arena.release();
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
  // Still usable after release.
  EXPECT_EQ(arena.alloc_span<int>(4).size(), 4u);
}

TEST(Arena, ChunkBoundaryGrowth) {
  // A chunk that fills *exactly* must not leak a byte into the next
  // allocation, and each spill opens exactly one new chunk.
  Arena arena(64);
  (void)arena.alloc_span<std::uint8_t>(64);
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.capacity(), 64u);

  const std::span<std::uint8_t> second = arena.alloc_span<std::uint8_t>(1);
  EXPECT_EQ(arena.chunk_count(), 2u);
  second[0] = 0xAB;

  // A request one byte over the remaining space of the active chunk
  // spills; the skipped tail is padding, not an accounting leak.
  (void)arena.alloc_span<std::uint8_t>(63);  // fills chunk 2 exactly
  EXPECT_EQ(arena.chunk_count(), 2u);
  (void)arena.alloc_span<std::uint8_t>(2);
  EXPECT_EQ(arena.chunk_count(), 3u);
  EXPECT_EQ(arena.bytes_allocated(), 64u + 1u + 63u + 2u);
  EXPECT_EQ(arena.capacity(), 3 * 64u);
}

TEST(Arena, SteadyStateResetCycleNeverGrows) {
  // The run_batch staging pattern: identical allocation shape every
  // cycle. After the first (warmup) cycle, reset() + refill must touch
  // the heap zero times — chunk count and capacity stay frozen.
  Arena arena(256);
  const auto fill = [&arena] {
    for (int i = 0; i < 10; ++i) {
      (void)arena.alloc_span<std::uint64_t>(17);
      (void)arena.alloc_span<char>(5);
    }
  };
  fill();
  const std::size_t warm_chunks = arena.chunk_count();
  const std::size_t warm_capacity = arena.capacity();
  EXPECT_GT(warm_chunks, 1u);  // the shape genuinely spans chunks
  for (int cycle = 0; cycle < 5; ++cycle) {
    arena.reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    EXPECT_EQ(arena.chunk_count(), warm_chunks);
    EXPECT_EQ(arena.capacity(), warm_capacity);
    fill();
    EXPECT_EQ(arena.chunk_count(), warm_chunks);
    EXPECT_EQ(arena.capacity(), warm_capacity);
  }
}

TEST(Arena, OverAlignedPayloads) {
  // Max-aligned requests after deliberately odd offsets, across chunk
  // spills: every returned pointer must honour the requested alignment
  // and bytes_allocated counts requests, never alignment padding.
  constexpr std::size_t kMaxAlign = alignof(std::max_align_t);
  Arena arena(128);
  std::size_t requested = 0;
  for (int i = 1; i <= 9; ++i) {
    (void)arena.alloc_span<char>(static_cast<std::size_t>(i));  // odd offset
    requested += static_cast<std::size_t>(i);
    void* p = arena.allocate(kMaxAlign * 2, kMaxAlign);
    requested += kMaxAlign * 2;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kMaxAlign, 0u)
        << "misaligned max_align_t payload at round " << i;
  }
  EXPECT_EQ(arena.bytes_allocated(), requested);
}

// --- arena thread ownership ------------------------------------------------------
//
// One arena belongs to one execution thread between resets — the
// invariant the parallel Backend::run_batch path leans on (each lane
// resets its private batch arena at shard start). A violation must fault
// loudly, not corrupt staging memory. (The detlint `context-per-thread`
// rule flags the static patterns; these tests pin the dynamic guard.)

TEST(Arena, SecondThreadAllocationThrows) {
  Arena arena;
  (void)arena.alloc_span<int>(1);  // bind to this thread
  EXPECT_TRUE(arena.owned_by_this_thread());

  bool threw = false;
  bool other_saw_ownership = true;
  std::thread other([&] {
    other_saw_ownership = arena.owned_by_this_thread();
    try {
      (void)arena.alloc_span<int>(1);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_FALSE(other_saw_ownership);
  EXPECT_TRUE(threw);
  // The faulting thread must not have corrupted the owner: the binding
  // thread still allocates freely.
  EXPECT_EQ(arena.alloc_span<int>(2).size(), 2u);
}

TEST(Arena, ResetIsTheOwnershipHandoffPoint) {
  Arena arena;
  (void)arena.alloc_span<int>(1);
  arena.reset();

  // After reset, any one thread may claim the arena...
  std::thread other([&] { (void)arena.alloc_span<int>(8); });
  other.join();

  // ...and the original thread is now the foreign one.
  EXPECT_FALSE(arena.owned_by_this_thread());
  EXPECT_THROW((void)arena.alloc_span<int>(1), std::logic_error);
  arena.reset();
  EXPECT_TRUE(arena.owned_by_this_thread());
  EXPECT_EQ(arena.alloc_span<int>(3).size(), 3u);
}

TEST(Arena, ZeroByteAllocationsNeverBind) {
  Arena arena;
  EXPECT_NE(arena.allocate(0, 1), nullptr);
  EXPECT_TRUE(arena.alloc_span<int>(0).empty());

  // No storage was handed out, so another thread can still claim it.
  bool ok = false;
  std::thread other([&] {
    (void)arena.alloc_span<int>(1);
    ok = arena.owned_by_this_thread();
  });
  other.join();
  EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------------
// FastMod — must be bit-for-bit identical to `%` (the substrate's coverage
// bucketing depends on it; a single differing result would shift campaign
// artifacts).

TEST(FastMod, MatchesOperatorPercentExhaustivelyForSmallOperands) {
  const std::uint64_t divisors[] = {1,  2,  3,  5,  7,  8,  11, 12,
                                    16, 24, 31, 48, 64, 96, 97, 128};
  for (const std::uint64_t d : divisors) {
    const FastMod mod(d);
    EXPECT_EQ(mod.divisor(), d);
    for (std::uint64_t n = 0; n < 4096; ++n) {
      ASSERT_EQ(mod(n), n % d) << "d=" << d << " n=" << n;
    }
  }
}

TEST(FastMod, MatchesOperatorPercentAtExtremesAndRandomly) {
  const std::uint64_t divisors[] = {
      1, 3, 12, 24, 48, 96, 1000, 4093, 65535, 65536, 1u << 20, 0x7fffffffu,
      0xffffffffu /* largest supported divisor, 2^32 - 1 */};
  const std::uint64_t edges[] = {0,
                                 1,
                                 2,
                                 0xffffffffull,
                                 0x100000000ull,
                                 0x123456789abcdefull,
                                 std::numeric_limits<std::uint64_t>::max() - 1,
                                 std::numeric_limits<std::uint64_t>::max()};
  SplitMix64 rng(0x5eedf00dULL);
  for (const std::uint64_t d : divisors) {
    const FastMod mod(d);
    for (const std::uint64_t n : edges) {
      ASSERT_EQ(mod(n), n % d) << "d=" << d << " n=" << n;
    }
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t n = rng.next();
      ASSERT_EQ(mod(n), n % d) << "d=" << d << " n=" << n;
    }
  }
}

TEST(FastMod, DefaultAndZeroDivisorReduceToZero) {
  const FastMod def;  // divisor 1: everything reduces to 0
  EXPECT_EQ(def(0), 0u);
  EXPECT_EQ(def(std::numeric_limits<std::uint64_t>::max()), 0u);
  const FastMod zero(0);  // tolerated (callers would have UB with `%`)
  EXPECT_EQ(zero(12345), 0u);
}

}  // namespace
}  // namespace mabfuzz::common
