// Mutation-engine tests: operator applicability, bounds, determinism and
// engine-level behaviour (parameterised across all operators).

#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "mutation/engine.hpp"
#include "mutation/operators.hpp"

namespace mabfuzz::mutation {
namespace {

using common::Xoshiro256StarStar;
using isa::Word;

std::vector<Word> sample_program() {
  return isa::assemble({isa::li(1, 5), isa::add(2, 1, 1), isa::sw(2, 1, 8),
                        isa::beq(1, 2, 8), isa::jal(0, 4)});
}

// --- per-operator behaviour (parameterised) ------------------------------------

class OperatorTest : public ::testing::TestWithParam<Op> {};

TEST_P(OperatorTest, PreservesLengthUnlessStructural) {
  Xoshiro256StarStar rng(17);
  for (int i = 0; i < 100; ++i) {
    std::vector<Word> program = sample_program();
    const std::size_t before = program.size();
    const bool applied = apply(GetParam(), program, rng);
    switch (GetParam()) {
      case Op::kInstrDelete:
        if (applied) {
          EXPECT_EQ(program.size(), before - 1);
        }
        break;
      case Op::kInstrClone:
        if (applied) {
          EXPECT_EQ(program.size(), before + 1);
        }
        break;
      default:
        EXPECT_EQ(program.size(), before);
    }
  }
}

TEST_P(OperatorTest, EmptyProgramIsRejected) {
  Xoshiro256StarStar rng(3);
  std::vector<Word> empty;
  EXPECT_FALSE(apply(GetParam(), empty, rng));
}

TEST_P(OperatorTest, HasAName) {
  EXPECT_NE(op_name(GetParam()), "?");
}

std::vector<Op> all_ops() {
  std::vector<Op> v;
  for (std::size_t i = 0; i < kNumOps; ++i) {
    v.push_back(static_cast<Op>(i));
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllOperators, OperatorTest, ::testing::ValuesIn(all_ops()),
                         [](const ::testing::TestParamInfo<Op>& param_info) {
                           return std::string(op_name(param_info.param));
                         });

// --- specific operator semantics ---------------------------------------------------

TEST(Operators, BitFlip1ChangesExactlyOneBit) {
  Xoshiro256StarStar rng(5);
  for (int i = 0; i < 50; ++i) {
    std::vector<Word> program = sample_program();
    const std::vector<Word> before = program;
    ASSERT_TRUE(apply(Op::kBitFlip1, program, rng));
    int changed_words = 0;
    int changed_bits = 0;
    for (std::size_t w = 0; w < program.size(); ++w) {
      if (program[w] != before[w]) {
        ++changed_words;
        changed_bits = std::popcount(program[w] ^ before[w]);
      }
    }
    EXPECT_EQ(changed_words, 1);
    EXPECT_EQ(changed_bits, 1);
  }
}

TEST(Operators, ByteFlipChangesOneByte) {
  Xoshiro256StarStar rng(7);
  std::vector<Word> program = sample_program();
  const std::vector<Word> before = program;
  ASSERT_TRUE(apply(Op::kByteFlip, program, rng));
  Word diff = 0;
  for (std::size_t w = 0; w < program.size(); ++w) {
    diff |= program[w] ^ before[w];
  }
  EXPECT_EQ(std::popcount(diff), 8);
}

TEST(Operators, DeleteRefusesSingleInstruction) {
  Xoshiro256StarStar rng(9);
  std::vector<Word> program = {isa::encode_or_die(isa::nop())};
  EXPECT_FALSE(apply(Op::kInstrDelete, program, rng));
  EXPECT_FALSE(apply(Op::kInstrSwap, program, rng));
}

TEST(Operators, CloneRespectsMaxLength) {
  Xoshiro256StarStar rng(11);
  std::vector<Word> program(kMaxProgramWords, isa::encode_or_die(isa::nop()));
  EXPECT_FALSE(apply(Op::kInstrClone, program, rng));
  EXPECT_EQ(program.size(), kMaxProgramWords);
}

TEST(Operators, OpcodeSwapKeepsFormatAndDecodability) {
  Xoshiro256StarStar rng(13);
  int applied = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<Word> program = {isa::encode_or_die(isa::add(3, 1, 2))};
    if (apply(Op::kOpcodeSwap, program, rng)) {
      ++applied;
      const isa::DecodeResult d = isa::decode(program[0]);
      ASSERT_TRUE(d.ok());
      EXPECT_NE(d.instr.mnemonic, isa::Mnemonic::kAdd);
      // Operands survive the swap.
      EXPECT_EQ(d.instr.rd, 3);
      EXPECT_EQ(d.instr.rs1, 1);
      EXPECT_EQ(d.instr.rs2, 2);
    }
  }
  EXPECT_GT(applied, 150);
}

TEST(Operators, OpcodeSwapRejectsIllegalWord) {
  Xoshiro256StarStar rng(15);
  std::vector<Word> program = {0xffffffffu};
  EXPECT_FALSE(apply(Op::kOpcodeSwap, program, rng));
}

TEST(Operators, OperandShuffleAlwaysApplies) {
  Xoshiro256StarStar rng(17);
  std::vector<Word> program = sample_program();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(apply(Op::kOperandShuffle, program, rng));
  }
}

TEST(Operators, InstrSwapPermutesProgram) {
  Xoshiro256StarStar rng(19);
  std::vector<Word> program = sample_program();
  auto sorted_before = program;
  std::sort(sorted_before.begin(), sorted_before.end());
  ASSERT_TRUE(apply(Op::kInstrSwap, program, rng));
  std::sort(program.begin(), program.end());
  EXPECT_EQ(program, sorted_before);  // multiset preserved
}

// --- engine --------------------------------------------------------------------------

TEST(Engine, MutantDiffersFromParent) {
  Engine engine(EngineConfig{}, Xoshiro256StarStar(23));
  const std::vector<Word> parent = sample_program();
  int different = 0;
  for (int i = 0; i < 100; ++i) {
    if (engine.mutate(parent) != parent) {
      ++different;
    }
  }
  EXPECT_GT(different, 95);  // ops are occasionally no-ops (e.g. swap same index)
}

TEST(Engine, DeterministicForSameSeed) {
  const std::vector<Word> parent = sample_program();
  Engine a(EngineConfig{}, Xoshiro256StarStar(31));
  Engine b(EngineConfig{}, Xoshiro256StarStar(31));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.mutate(parent), b.mutate(parent));
  }
}

TEST(Engine, OpCountsAccumulate) {
  Engine engine(EngineConfig{}, Xoshiro256StarStar(37));
  const std::vector<Word> parent = sample_program();
  for (int i = 0; i < 300; ++i) {
    (void)engine.mutate(parent);
  }
  std::uint64_t total = 0;
  for (const std::uint64_t c : engine.op_counts()) {
    total += c;
  }
  EXPECT_GT(total, 300u);  // bursts of 1..max_ops
}

TEST(Engine, RespectsOperatorWeights) {
  EngineConfig config;
  config.weights.fill(0.0);
  config.weights[static_cast<std::size_t>(Op::kBitFlip1)] = 1.0;
  Engine engine(config, Xoshiro256StarStar(41));
  const std::vector<Word> parent = sample_program();
  for (int i = 0; i < 100; ++i) {
    (void)engine.mutate(parent);
  }
  for (std::size_t op = 0; op < kNumOps; ++op) {
    if (op != static_cast<std::size_t>(Op::kBitFlip1)) {
      EXPECT_EQ(engine.op_counts()[op], 0u) << op_name(static_cast<Op>(op));
    }
  }
  EXPECT_GT(engine.op_counts()[static_cast<std::size_t>(Op::kBitFlip1)], 0u);
}

TEST(Engine, EmptyParentStaysEmpty) {
  Engine engine(EngineConfig{}, Xoshiro256StarStar(43));
  EXPECT_TRUE(engine.mutate({}).empty());
}

}  // namespace
}  // namespace mabfuzz::mutation
