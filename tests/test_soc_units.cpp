// Substrate unit tests: caches (including write-back data behaviour and
// the V4 dropped-writeback gate), branch predictor, scoreboard, ROB,
// CSR unit and decode unit.

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "coverage/context.hpp"
#include "golden/memory.hpp"
#include "isa/builder.hpp"
#include "isa/encoder.hpp"
#include "isa/platform.hpp"
#include "soc/cache.hpp"
#include "soc/csr_unit.hpp"
#include "soc/decode_unit.hpp"
#include "soc/predictor.hpp"
#include "soc/rob.hpp"
#include "soc/scoreboard.hpp"

namespace mabfuzz::soc {
namespace {

using isa::kDramBase;

// --- InstructionCache ----------------------------------------------------------

class ICacheTest : public ::testing::Test {
 protected:
  ICacheTest() : icache_(CacheParams{4, 2, 32}, ctx_) { ctx_.freeze(); }
  coverage::Context ctx_;
  InstructionCache icache_;
};

TEST_F(ICacheTest, MissThenHit) {
  ctx_.begin_test();
  EXPECT_FALSE(icache_.access(kDramBase, ctx_));
  EXPECT_TRUE(icache_.access(kDramBase, ctx_));
  EXPECT_TRUE(icache_.access(kDramBase + 28, ctx_));  // same line
  EXPECT_FALSE(icache_.access(kDramBase + 32, ctx_)); // next line
}

TEST_F(ICacheTest, LruEviction) {
  ctx_.begin_test();
  const std::uint64_t set_stride = 4 * 32;  // sets * line_bytes
  icache_.access(kDramBase, ctx_);                   // way 0
  icache_.access(kDramBase + set_stride, ctx_);      // way 1
  icache_.access(kDramBase, ctx_);                   // touch way 0
  icache_.access(kDramBase + 2 * set_stride, ctx_);  // evicts way 1 (LRU)
  EXPECT_TRUE(icache_.access(kDramBase, ctx_));
  EXPECT_FALSE(icache_.access(kDramBase + set_stride, ctx_));
}

TEST_F(ICacheTest, InvalidateAllFlushes) {
  ctx_.begin_test();
  icache_.access(kDramBase, ctx_);
  icache_.invalidate_all(ctx_);
  EXPECT_FALSE(icache_.access(kDramBase, ctx_));
}

// --- DataCache ------------------------------------------------------------------

class DCacheTest : public ::testing::Test {
 protected:
  DCacheTest()
      : memory_(kDramBase, 64 * 1024), dcache_(CacheParams{2, 2, 32}, ctx_) {
    ctx_.freeze();
    ctx_.begin_test();
  }
  coverage::Context ctx_;
  golden::Memory memory_;
  DataCache dcache_;
};

TEST_F(DCacheTest, LoadFillsFromMemory) {
  memory_.store(kDramBase + 8, 0xabcd, 2);
  const auto r = dcache_.load(kDramBase + 8, 2, memory_, ctx_, false);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.value, 0xabcdu);
  const auto r2 = dcache_.load(kDramBase + 8, 2, memory_, ctx_, false);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(r2.value, 0xabcdu);
}

TEST_F(DCacheTest, StoreIsWriteBack) {
  const auto w = dcache_.store(kDramBase, 0x55, 1, memory_, ctx_, false);
  EXPECT_TRUE(w.ok);
  // DRAM not yet updated (write-back).
  EXPECT_EQ(memory_.load(kDramBase, 1), 0ULL);
  // But the cache serves the new value.
  EXPECT_EQ(dcache_.load(kDramBase, 1, memory_, ctx_, false).value, 0x55u);
  // Flush writes it back.
  dcache_.flush_all(memory_, ctx_);
  EXPECT_EQ(memory_.load(kDramBase, 1), 0x55ULL);
}

TEST_F(DCacheTest, DirtyEvictionWritesBack) {
  const std::uint64_t set_stride = 2 * 32;
  dcache_.store(kDramBase, 0x11, 1, memory_, ctx_, false);
  // Fill both ways of set 0, then one more to evict the dirty line.
  dcache_.load(kDramBase + set_stride, 1, memory_, ctx_, false);
  const auto r = dcache_.load(kDramBase + 2 * set_stride, 1, memory_, ctx_, false);
  EXPECT_TRUE(r.dirty_eviction);
  EXPECT_FALSE(r.writeback_dropped);
  EXPECT_EQ(memory_.load(kDramBase, 1), 0x11ULL);
}

TEST_F(DCacheTest, V4DropsWritebackOfAliasedLines) {
  // kDramBase + 448 has address bits [8:6] all set: its writeback aliases
  // into a non-existent bank and is dropped.
  dcache_.store(kDramBase + 448, 0x22, 1, memory_, ctx_, true);  // aliased line
  dcache_.store(kDramBase, 0x11, 1, memory_, ctx_, true);        // normal line
  // Force both dirty set-0 lines out.
  const auto r1 = dcache_.load(kDramBase + 64, 1, memory_, ctx_, true);
  const auto r2 = dcache_.load(kDramBase + 128, 1, memory_, ctx_, true);
  EXPECT_TRUE(r1.dirty_eviction);
  EXPECT_TRUE(r1.writeback_dropped);   // +448 was LRU: dropped
  EXPECT_TRUE(r2.dirty_eviction);
  EXPECT_FALSE(r2.writeback_dropped);  // +0 writes back fine
  EXPECT_EQ(memory_.load(kDramBase, 1), 0x11ULL);
  EXPECT_EQ(memory_.load(kDramBase + 448, 1), 0x00ULL);  // stale
}

TEST_F(DCacheTest, WithoutBugAllWritebacksSurvive) {
  const std::uint64_t set_stride = 2 * 32;
  dcache_.store(kDramBase, 0x11, 1, memory_, ctx_, false);
  dcache_.store(kDramBase + set_stride, 0x22, 1, memory_, ctx_, false);
  dcache_.load(kDramBase + 2 * set_stride, 1, memory_, ctx_, false);
  dcache_.load(kDramBase + 3 * set_stride, 1, memory_, ctx_, false);
  EXPECT_EQ(memory_.load(kDramBase, 1), 0x11ULL);
  EXPECT_EQ(memory_.load(kDramBase + set_stride, 1), 0x22ULL);
}

TEST_F(DCacheTest, V4FlushStillWritesBackEverything) {
  // FENCE-initiated flushes use the full address path, not the broken
  // writeback decoder: they are never dropped.
  dcache_.store(kDramBase + 448, 0x33, 1, memory_, ctx_, true);  // aliased line
  dcache_.flush_all(memory_, ctx_);
  EXPECT_EQ(memory_.load(kDramBase + 448, 1), 0x33ULL);
}

TEST_F(DCacheTest, UnmappedAddressReported) {
  const auto r = dcache_.load(0x1000, 4, memory_, ctx_, false);
  EXPECT_FALSE(r.ok);
}

TEST_F(DCacheTest, SnoopSeesDirtyData) {
  dcache_.store(kDramBase + 4, 0xdeadbeef, 4, memory_, ctx_, false);
  const auto s = dcache_.snoop(kDramBase + 4, 4);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, 0xdeadbeefULL);
  EXPECT_FALSE(dcache_.snoop(kDramBase + 4096, 4).has_value());
}

TEST_F(DCacheTest, PhysicalAliasesShareLines) {
  const std::uint64_t alias = 0xFFFFFFFF00000000ULL | kDramBase;
  dcache_.store(alias, 0x7f, 1, memory_, ctx_, false);
  EXPECT_EQ(dcache_.load(kDramBase, 1, memory_, ctx_, false).value, 0x7fu);
}

// --- BranchPredictor ---------------------------------------------------------------

class PredictorTest : public ::testing::Test {
 protected:
  PredictorTest() : predictor_(PredictorParams{16}, ctx_) {
    ctx_.freeze();
    ctx_.begin_test();
  }
  coverage::Context ctx_;
  BranchPredictor predictor_;
};

TEST_F(PredictorTest, ColdMiss) {
  EXPECT_FALSE(predictor_.predict(kDramBase, ctx_).btb_hit);
}

TEST_F(PredictorTest, LearnsTakenBranch) {
  for (int i = 0; i < 3; ++i) {
    const auto p = predictor_.predict(kDramBase, ctx_);
    predictor_.update(kDramBase, true, p.predict_taken != true, ctx_);
  }
  const auto p = predictor_.predict(kDramBase, ctx_);
  EXPECT_TRUE(p.btb_hit);
  EXPECT_TRUE(p.predict_taken);
}

TEST_F(PredictorTest, CounterHysteresis) {
  // Train strongly taken, then one not-taken must not flip the prediction.
  for (int i = 0; i < 4; ++i) {
    predictor_.update(kDramBase, true, false, ctx_);
  }
  predictor_.update(kDramBase, false, true, ctx_);
  EXPECT_TRUE(predictor_.predict(kDramBase, ctx_).predict_taken);
}

TEST_F(PredictorTest, ResetForgets) {
  predictor_.update(kDramBase, true, false, ctx_);
  predictor_.reset();
  EXPECT_FALSE(predictor_.predict(kDramBase, ctx_).btb_hit);
}

// --- Scoreboard -----------------------------------------------------------------------

class ScoreboardTest : public ::testing::Test {
 protected:
  ScoreboardTest() : sb_(ctx_) {
    ctx_.freeze();
    ctx_.begin_test();
  }
  coverage::Context ctx_;
  Scoreboard sb_;
};

TEST_F(ScoreboardTest, ReadyRegisterNoStall) {
  EXPECT_EQ(sb_.check_read(5, 100, ctx_), 0u);
}

TEST_F(ScoreboardTest, RawHazardStalls) {
  sb_.mark_write(5, 110, ctx_);
  EXPECT_EQ(sb_.check_read(5, 100, ctx_), 10u);
}

TEST_F(ScoreboardTest, BypassOneCycleAway) {
  sb_.mark_write(5, 101, ctx_);
  EXPECT_EQ(sb_.check_read(5, 100, ctx_), 0u);  // forwarded
}

TEST_F(ScoreboardTest, X0NeverHazards) {
  sb_.mark_write(0, 1000, ctx_);
  EXPECT_EQ(sb_.check_read(0, 0, ctx_), 0u);
}

TEST_F(ScoreboardTest, FlushClears) {
  sb_.mark_write(7, 1000, ctx_);
  sb_.flush();
  EXPECT_EQ(sb_.check_read(7, 0, ctx_), 0u);
}

// --- ReorderBuffer ----------------------------------------------------------------------

class RobTest : public ::testing::Test {
 protected:
  RobTest() : rob_(4, ctx_) {
    ctx_.freeze();
    ctx_.begin_test();
  }
  coverage::Context ctx_;
  ReorderBuffer rob_;
};

TEST_F(RobTest, AllocateRetireOccupancy) {
  rob_.allocate(ctx_);
  rob_.allocate(ctx_);
  EXPECT_EQ(rob_.occupancy(), 2u);
  rob_.retire(ctx_);
  EXPECT_EQ(rob_.occupancy(), 1u);
}

TEST_F(RobTest, FullBackpressureRetiresOldest) {
  for (int i = 0; i < 5; ++i) {
    rob_.allocate(ctx_);
  }
  EXPECT_LE(rob_.occupancy(), 4u);
}

TEST_F(RobTest, FlushEmpties) {
  rob_.allocate(ctx_);
  rob_.allocate(ctx_);
  rob_.flush(ctx_);
  EXPECT_EQ(rob_.occupancy(), 0u);
}

TEST(RobDisabled, ZeroSlotsIsNoop) {
  coverage::Context ctx;
  ReorderBuffer rob(0, ctx);
  ctx.freeze();
  ctx.begin_test();
  rob.allocate(ctx);
  rob.retire(ctx);
  rob.flush(ctx);
  EXPECT_FALSE(rob.enabled());
  EXPECT_EQ(ctx.test_map().count(), 0u);
}

// --- CsrUnit -------------------------------------------------------------------------------

class CsrUnitTest : public ::testing::Test {
 protected:
  CsrUnitTest() : csrs_(golden::CsrIdentity{}, BugSet::none(), ctx_) {
    ctx_.freeze();
    ctx_.begin_test();
  }
  CsrUnit::AccessOutcome do_csrrw(isa::CsrAddr addr, std::uint64_t value,
                                  CsrUnit& unit) {
    const isa::Instruction instr = isa::csrrw(1, addr, 2);
    return unit.access(instr, value, /*write_form=*/true,
                       /*performs_write=*/true, /*instret=*/1, ctx_);
  }
  coverage::Context ctx_;
  CsrUnit csrs_;
};

TEST_F(CsrUnitTest, MirrorsGoldenSemantics) {
  const auto w = do_csrrw(isa::csr::kMscratch, 0x1234, csrs_);
  EXPECT_FALSE(w.illegal);
  EXPECT_EQ(w.old_value, 0u);
  EXPECT_EQ(csrs_.mscratch(), 0x1234u);
}

TEST_F(CsrUnitTest, UnimplementedIsIllegalWithoutV6) {
  const auto r = do_csrrw(0x7C5, 1, csrs_);
  EXPECT_TRUE(r.illegal);
  EXPECT_FALSE(r.v6_fired);
}

TEST_F(CsrUnitTest, V6WindowMembership) {
  EXPECT_TRUE(CsrUnit::in_v6_window(0x7C0));
  EXPECT_TRUE(CsrUnit::in_v6_window(0x7FF));
  EXPECT_TRUE(CsrUnit::in_v6_window(0xB10));
  EXPECT_FALSE(CsrUnit::in_v6_window(0xB00));  // mcycle: implemented
  EXPECT_FALSE(CsrUnit::in_v6_window(0x123));
}

TEST(CsrUnitBug, V6ReturnsXValueWithoutTrap) {
  coverage::Context ctx;
  CsrUnit csrs(golden::CsrIdentity{}, BugSet::single(BugId::kV6CsrXValue), ctx);
  ctx.freeze();
  ctx.begin_test();
  const isa::Instruction instr = isa::csrrs(1, 0x7C5, 0);
  const auto r = csrs.access(instr, 0, false, false, 1, ctx);
  EXPECT_FALSE(r.illegal);
  EXPECT_TRUE(r.v6_fired);
  EXPECT_EQ(r.old_value, CsrUnit::x_value(0x7C5));
  EXPECT_NE(CsrUnit::x_value(0x7C5), CsrUnit::x_value(0x7C6));
}

// --- DecodeUnit ----------------------------------------------------------------------------

class DecodeUnitTest : public ::testing::Test {
 protected:
  DecodeUnitTest()
      : decode_(DecodeUnitParams{1, 8, 256}, BugSet::none(), ctx_) {
    ctx_.freeze();
    ctx_.begin_test();
  }
  coverage::Context ctx_;
  DecodeUnit decode_;
};

TEST_F(DecodeUnitTest, LegalInstructionDecodes) {
  const auto out = decode_.decode(isa::encode_or_die(isa::addi(1, 2, 3)), 0, ctx_);
  EXPECT_TRUE(out.legal);
  EXPECT_EQ(out.instr.mnemonic, isa::Mnemonic::kAddi);
  EXPECT_GT(ctx_.test_map().count(), 0u);
}

TEST_F(DecodeUnitTest, IllegalStaysIllegalWithoutBugs) {
  isa::Word w = isa::encode_or_die(isa::add(1, 2, 3));
  w = static_cast<isa::Word>(common::insert_bits(w, 25, 7, 0b1010000));
  const auto out = decode_.decode(w, 0, ctx_);
  EXPECT_FALSE(out.legal);
  EXPECT_FALSE(out.v2_illegal_executed);
}

TEST_F(DecodeUnitTest, FpuPredecodeHitsOnFpOpcodes) {
  ctx_.begin_test();
  const isa::Word fp_word = 0b1010011;  // OP-FP, everything else zero
  decode_.decode(fp_word, 0, ctx_);
  EXPECT_GT(ctx_.test_map().count(), 0u);
}

TEST(DecodeUnitBug, V1FenceIWithRdFires) {
  coverage::Context ctx;
  DecodeUnit decode(DecodeUnitParams{1, 8, 0},
                    BugSet::single(BugId::kV1FenceIDecode), ctx);
  ctx.freeze();
  ctx.begin_test();
  isa::Word w = isa::encode_or_die(isa::fence_i());
  w = isa::set_rd(w, 9);
  const auto out = decode.decode(w, 0, ctx);
  EXPECT_TRUE(out.legal);
  EXPECT_TRUE(out.v1_spurious_rd_write);
  EXPECT_EQ(out.v1_rd, 9);

  // Canonical fence.i (rd = 0) must NOT fire.
  const auto ok = decode.decode(isa::encode_or_die(isa::fence_i()), 0, ctx);
  EXPECT_FALSE(ok.v1_spurious_rd_write);
}

TEST(DecodeUnitBug, V2ExecutesReservedFunct7) {
  coverage::Context ctx;
  DecodeUnit decode(DecodeUnitParams{1, 8, 0},
                    BugSet::single(BugId::kV2IllegalOpExec), ctx);
  ctx.freeze();
  ctx.begin_test();
  // ADDW with a reserved funct7 bit set (not SUBW, not MULDIV).
  isa::Word w = isa::encode_or_die(isa::addw(3, 1, 2));
  w = static_cast<isa::Word>(common::insert_bits(w, 25, 7, 0b1000000));
  ASSERT_TRUE(DecodeUnit::v2_candidate(w));
  const auto out = decode.decode(w, 0, ctx);
  EXPECT_TRUE(out.legal);
  EXPECT_TRUE(out.v2_illegal_executed);
  EXPECT_EQ(out.instr.mnemonic, isa::Mnemonic::kAddw);
}

}  // namespace
}  // namespace mabfuzz::soc
