// Seeded-determinism regression: two MABFuzz runs built from the same
// MabFuzzConfig and RNG seeds must replay the exact same experiment —
// identical arm-selection sequences, coverage totals, resets and mismatch
// flags — and a whole trial matrix must produce byte-identical aggregate
// statistics no matter how many worker threads execute it.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/corpus.hpp"

#include "core/scheduler.hpp"
#include "fuzz/backend.hpp"
#include "harness/experiment.hpp"
#include "mab/registry.hpp"
#include "soc/bugs.hpp"
#include "soc/cores.hpp"

namespace mabfuzz {
namespace {

struct RunTrace {
  std::vector<std::size_t> arms;
  std::vector<std::size_t> new_points;
  std::vector<bool> mismatches;
  std::size_t covered = 0;
  std::uint64_t resets = 0;
};

RunTrace run_once(std::string_view algorithm, std::uint64_t seed, int steps) {
  fuzz::BackendConfig backend_config;
  backend_config.core = soc::CoreKind::kRocket;
  backend_config.bugs = soc::default_bugs(soc::CoreKind::kRocket);
  backend_config.rng_seed = seed;
  fuzz::Backend backend(backend_config);

  core::MabFuzzConfig mab_config;
  mab_config.num_arms = 5;
  mab::BanditConfig bandit_config;
  bandit_config.num_arms = mab_config.num_arms;
  bandit_config.rng_seed = seed;
  core::MabScheduler fuzzer(backend, mab::make_bandit(algorithm, bandit_config),
                            mab_config);

  RunTrace trace;
  for (int t = 0; t < steps; ++t) {
    const fuzz::StepResult result = fuzzer.step();
    // .value() throws (failing the test loudly) if the scheduler ever
    // stops reporting its selected arm.
    trace.arms.push_back(result.arm.value());
    trace.new_points.push_back(result.new_global_points);
    trace.mismatches.push_back(result.mismatch);
  }
  trace.covered = fuzzer.accumulated().covered();
  trace.resets = fuzzer.total_resets();
  return trace;
}

class DeterminismTest : public ::testing::TestWithParam<std::string_view> {};

TEST_P(DeterminismTest, SameSeedReplaysIdentically) {
  const auto a = run_once(GetParam(), /*seed=*/1234, /*steps=*/300);
  const auto b = run_once(GetParam(), /*seed=*/1234, /*steps=*/300);
  EXPECT_EQ(a.arms, b.arms) << "arm-selection sequence diverged";
  EXPECT_EQ(a.new_points, b.new_points);
  EXPECT_EQ(a.mismatches, b.mismatches);
  EXPECT_EQ(a.covered, b.covered) << "coverage total diverged";
  EXPECT_EQ(a.resets, b.resets);
}

TEST_P(DeterminismTest, RunMakesProgress) {
  // Sanity guard for the regression above: a trace that covers nothing would
  // make the equality checks vacuous.
  const auto a = run_once(GetParam(), /*seed=*/1234, /*steps=*/300);
  EXPECT_GT(a.covered, 0u);
  EXPECT_EQ(a.arms.size(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DeterminismTest,
                         ::testing::Values("ucb", "epsilon-greedy", "exp3",
                                           "thompson"),
                         [](const auto& param_info) {
                           // gtest parameter names must be alphanumeric
                           // ("epsilon-greedy" has a hyphen).
                           std::string name(param_info.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(static_cast<unsigned char>(c));
                           });
                           return name;
                         });

// --- determinism under concurrency ----------------------------------------------

// The same trial matrix + seeds must produce byte-identical aggregate
// statistics with 1, 2 and 8 workers: per-trial RNG streams derive from
// (seed, run_index) only, results land in matrix-expansion order, and
// aggregation runs after the pool drains. Compared as serialized artifacts
// (timing excluded — wall clock is the one legitimately non-deterministic
// field), so any ordering or aggregation drift fails the string equality.
TEST(ExperimentDeterminism, AggregateStatsByteIdenticalAcrossWorkerCounts) {
  harness::TrialMatrix matrix;
  matrix.base.core = soc::CoreKind::kRocket;
  matrix.base.bugs = soc::default_bugs(soc::CoreKind::kRocket);
  matrix.base.max_tests = 50;
  matrix.base.snapshot_every = 25;
  matrix.base.rng_seed = 1234;
  matrix.fuzzers = {"thehuzz", "ucb", "exp3"};
  matrix.trials = 4;

  auto artifact = [&](unsigned workers) {
    harness::ExperimentOptions options;
    options.workers = workers;
    const harness::ExperimentResult result =
        harness::Experiment(matrix, options).run();
    harness::ArtifactOptions artifact_options;
    artifact_options.include_timing = false;
    std::ostringstream os;
    harness::write_experiment_json(os, result, artifact_options);
    harness::write_trials_csv(os, result, artifact_options);
    return os.str();
  };

  const std::string serial = artifact(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, artifact(2)) << "2-worker run diverged from serial";
  EXPECT_EQ(serial, artifact(8)) << "8-worker run diverged from serial";
}

// A corpus round trip is part of the same contract: campaigns reloading a
// saved mabfuzz-corpus-v2 store must replay byte-identically for the same
// seeds no matter how many workers execute the matrix (the corpus is
// read-only shared input; every trial re-materialises its own copy).
TEST(ExperimentDeterminism, ReloadedCorpusCampaignByteIdenticalAcrossWorkers) {
  const std::string path = testing::TempDir() + "determinism_corpus.bin";
  {
    harness::CampaignConfig warmup;
    warmup.fuzzer = "reuse";
    warmup.core = soc::CoreKind::kRocket;
    warmup.bugs = soc::BugSet::none();
    warmup.max_tests = 200;
    warmup.rng_seed = 4321;
    warmup.corpus_out = path;
    harness::Campaign campaign(warmup);
    campaign.run();
    ASSERT_TRUE(campaign.save_corpus());
    ASSERT_GT(campaign.corpus()->size(), 0u);
  }

  harness::TrialMatrix matrix;
  matrix.base.fuzzer = "reuse";
  matrix.base.core = soc::CoreKind::kRocket;
  matrix.base.bugs = soc::default_bugs(soc::CoreKind::kRocket);
  matrix.base.max_tests = 60;
  matrix.base.snapshot_every = 30;
  matrix.base.rng_seed = 1234;
  matrix.base.corpus_in = path;
  matrix.trials = 4;

  auto artifact = [&](unsigned workers) {
    harness::ExperimentOptions options;
    options.workers = workers;
    const harness::ExperimentResult result =
        harness::Experiment(matrix, options).run();
    EXPECT_EQ(result.failed_trials, 0u);
    harness::ArtifactOptions artifact_options;
    artifact_options.include_timing = false;
    std::ostringstream os;
    harness::write_experiment_json(os, result, artifact_options);
    harness::write_trials_csv(os, result, artifact_options);
    return os.str();
  };

  const std::string serial = artifact(1);
  EXPECT_NE(serial.find("corpus_entries"), std::string::npos)
      << "artifact lost the corpus provenance fields";
  EXPECT_EQ(serial, artifact(2)) << "2-worker warm run diverged from serial";
  EXPECT_EQ(serial, artifact(8)) << "8-worker warm run diverged from serial";
  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
}

// Sharded corpus federation closes the loop: a matrix with corpus_out has
// every trial write its own `<target>.shard-<index>` store, merged
// post-barrier in spec-index order with Corpus::merge's canonical
// re-offer. Both the experiment artifacts (shard provenance included) and
// the merged corpus file must be byte-identical for 1, 2 and 8 workers —
// shard *completion* order varies with scheduling, but nothing of it may
// reach the merged bytes.
TEST(ExperimentDeterminism, ShardedCorpusMergeByteIdenticalAcrossWorkers) {
  const std::string path = testing::TempDir() + "determinism_federated.bin";
  auto run_with = [&](unsigned workers) {
    harness::TrialMatrix matrix;
    matrix.base.fuzzer = "reuse";
    matrix.base.core = soc::CoreKind::kRocket;
    matrix.base.bugs = soc::BugSet::none();
    matrix.base.max_tests = 60;
    matrix.base.snapshot_every = 30;
    matrix.base.rng_seed = 1234;
    matrix.base.corpus_out = path;
    matrix.fuzzers = {"reuse", "thehuzz"};
    matrix.trials = 4;
    harness::ExperimentOptions options;
    options.workers = workers;
    const harness::ExperimentResult result =
        harness::Experiment(matrix, options).run();
    EXPECT_EQ(result.failed_trials, 0u);
    harness::ArtifactOptions artifact_options;
    artifact_options.include_timing = false;
    std::ostringstream os;
    harness::write_experiment_json(os, result, artifact_options);
    harness::write_trials_csv(os, result, artifact_options);
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "merged corpus was not written";
    std::ostringstream corpus_bytes;
    corpus_bytes << in.rdbuf();
    std::remove(path.c_str());
    std::remove((path + ".json").c_str());
    return std::pair<std::string, std::string>(os.str(), corpus_bytes.str());
  };

  const auto serial = run_with(1);
  EXPECT_NE(serial.first.find("corpus_out"), std::string::npos)
      << "artifact lost the shard provenance fields";
  EXPECT_FALSE(serial.second.empty());
  const auto two = run_with(2);
  EXPECT_EQ(serial.first, two.first) << "2-worker artifacts diverged";
  EXPECT_EQ(serial.second, two.second) << "2-worker merged corpus diverged";
  const auto eight = run_with(8);
  EXPECT_EQ(serial.first, eight.first) << "8-worker artifacts diverged";
  EXPECT_EQ(serial.second, eight.second) << "8-worker merged corpus diverged";
}

// Intra-trial parallelism is the final axis: exec-workers shards each
// trial's run_batch blocks across a per-backend thread team. Experiment
// artifacts AND the merged corpus must be byte-identical for exec-workers
// 1, 2 and 8 (timing excluded) — the shard->lane assignment may never
// reach an artifact byte. exec_batch > 1 routes execution through
// run_batch so the parallel path actually runs.
TEST(ExperimentDeterminism, ArtifactsByteIdenticalAcrossExecWorkerCounts) {
  const std::string path = testing::TempDir() + "determinism_execworkers.bin";
  auto run_with = [&](std::size_t exec_workers) {
    harness::TrialMatrix matrix;
    matrix.base.core = soc::CoreKind::kRocket;
    matrix.base.bugs = soc::default_bugs(soc::CoreKind::kRocket);
    matrix.base.max_tests = 60;
    matrix.base.snapshot_every = 30;
    matrix.base.rng_seed = 1234;
    matrix.base.corpus_out = path;
    matrix.base.policy.exec_batch = 16;
    matrix.base.policy.exec_workers = exec_workers;
    matrix.fuzzers = {"thehuzz", "ucb"};
    matrix.trials = 3;
    harness::ExperimentOptions options;
    options.workers = 2;  // trial workers x exec workers: the nested case
    const harness::ExperimentResult result =
        harness::Experiment(matrix, options).run();
    EXPECT_EQ(result.failed_trials, 0u);
    harness::ArtifactOptions artifact_options;
    artifact_options.include_timing = false;
    std::ostringstream os;
    harness::write_experiment_json(os, result, artifact_options);
    harness::write_trials_csv(os, result, artifact_options);
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "merged corpus was not written";
    std::ostringstream corpus_bytes;
    corpus_bytes << in.rdbuf();
    std::remove(path.c_str());
    std::remove((path + ".json").c_str());
    return std::pair<std::string, std::string>(os.str(), corpus_bytes.str());
  };

  const auto sequential = run_with(1);
  EXPECT_FALSE(sequential.first.empty());
  EXPECT_FALSE(sequential.second.empty());
  const auto two = run_with(2);
  EXPECT_EQ(sequential.first, two.first)
      << "exec-workers=2 artifacts diverged from sequential";
  EXPECT_EQ(sequential.second, two.second)
      << "exec-workers=2 merged corpus diverged";
  const auto eight = run_with(8);
  EXPECT_EQ(sequential.first, eight.first)
      << "exec-workers=8 artifacts diverged from sequential";
  EXPECT_EQ(sequential.second, eight.second)
      << "exec-workers=8 merged corpus diverged";
}

}  // namespace
}  // namespace mabfuzz
