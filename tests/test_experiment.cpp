// Trial-matrix experiment engine tests: matrix expansion (axes, labels,
// override application, validation), engine execution with per-cell
// aggregation, failed-trial surfacing, the pairwise speedup report, and
// the CSV/JSON artifact emitters.
//
// The flagship case mirrors the paper's Table I protocol: one declarative
// matrix (bandit + baseline × >= 5 seeded trials, stop at first detection)
// produces a median-based speedup report in a single Experiment call.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"

namespace mabfuzz::harness {
namespace {

TrialMatrix small_matrix() {
  TrialMatrix matrix;
  matrix.base.core = soc::CoreKind::kRocket;
  matrix.base.bugs = soc::BugSet::none();
  matrix.base.max_tests = 40;
  matrix.base.snapshot_every = 20;
  matrix.base.rng_seed = 7;
  return matrix;
}

// --- expansion ------------------------------------------------------------------

TEST(TrialMatrixExpand, FuzzerMajorOrderAndRunRange) {
  TrialMatrix matrix = small_matrix();
  matrix.fuzzers = {"thehuzz", "ucb"};
  matrix.trials = 3;
  matrix.first_run = 10;
  const std::vector<TrialSpec> specs = matrix.expand();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].fuzzer, "thehuzz");
  EXPECT_EQ(specs[0].run_index, 10u);
  EXPECT_EQ(specs[2].run_index, 12u);
  EXPECT_EQ(specs[3].fuzzer, "ucb");
  EXPECT_EQ(specs[3].run_index, 10u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].index, i);
    EXPECT_EQ(specs[i].config.fuzzer, specs[i].fuzzer);
    EXPECT_EQ(specs[i].config.run_index, specs[i].run_index);
  }
}

TEST(TrialMatrixExpand, EmptyAxesFallBackToBase) {
  TrialMatrix matrix = small_matrix();
  matrix.base.fuzzer = "exp3";
  const std::vector<TrialSpec> specs = matrix.expand();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].fuzzer, "exp3");
  EXPECT_EQ(specs[0].variant, "");
}

TEST(TrialMatrixExpand, VariantOverridesApplyPerCell) {
  TrialMatrix matrix = small_matrix();
  matrix.fuzzers = {"ucb"};
  matrix.variants = {{"narrow", {"arms=4"}}, {"wide", {"arms=20"}}};
  matrix.trials = 2;
  const std::vector<TrialSpec> specs = matrix.expand();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].variant, "narrow");
  EXPECT_EQ(specs[0].config.policy.bandit.num_arms, 4u);
  EXPECT_EQ(specs[2].variant, "wide");
  EXPECT_EQ(specs[2].config.policy.bandit.num_arms, 20u);
  // The base is never mutated by expansion.
  EXPECT_EQ(matrix.base.policy.bandit.num_arms, 10u);
}

TEST(TrialMatrixExpand, MalformedOverrideThrowsBeforeAnyTrialRuns) {
  TrialMatrix matrix = small_matrix();
  matrix.variants = {{"bad", {"no-such-knob=1"}}};
  EXPECT_THROW((void)matrix.expand(), std::invalid_argument);
  EXPECT_THROW((void)Experiment(matrix), std::invalid_argument);
}

// --- execution + aggregation ----------------------------------------------------

TEST(ExperimentRun, AggregatesPerCell) {
  TrialMatrix matrix = small_matrix();
  matrix.fuzzers = {"thehuzz", "ucb"};
  matrix.trials = 3;
  const ExperimentResult result = Experiment(matrix).run();

  ASSERT_EQ(result.trials.size(), 6u);
  EXPECT_EQ(result.failed_trials, 0u);
  ASSERT_EQ(result.cells.size(), 2u);
  for (const CellStats& cell : result.cells) {
    EXPECT_EQ(cell.trials, 3u);
    EXPECT_EQ(cell.failed_trials, 0u);
    EXPECT_EQ(cell.tests.count, 3u);
    EXPECT_DOUBLE_EQ(cell.tests.mean, 40.0);  // coverage mode runs to the cap
    EXPECT_GT(cell.covered.mean, 0.0);
    EXPECT_GE(cell.covered.max, cell.covered.median);
    EXPECT_GE(cell.covered.median, cell.covered.min);
    // Mean curve spans the full run: grid {20, 40}.
    ASSERT_EQ(cell.mean_curve.grid.size(), 2u);
    EXPECT_EQ(cell.mean_curve.grid.back(), 40u);
    EXPECT_DOUBLE_EQ(cell.mean_curve.final_covered, cell.covered.mean);
  }
  EXPECT_NE(result.find_cell("thehuzz"), nullptr);
  EXPECT_NE(result.find_cell("ucb"), nullptr);
  EXPECT_EQ(result.find_cell("nope"), nullptr);

  // Distinct run indices decorrelate trials within a cell.
  const CellStats& ucb = *result.find_cell("ucb");
  EXPECT_GT(ucb.covered.stddev, 0.0);
}

TEST(ExperimentRun, FailedTrialsAreCountedAndSurfacedNotDropped) {
  // Two of the three fuzzer names don't resolve: four failing trials must
  // all be reported (the old parallel_runs dropped all but the first
  // exception) while the valid cell still aggregates.
  TrialMatrix matrix = small_matrix();
  matrix.fuzzers = {"thehuzz", "no-such-policy", "also-missing"};
  matrix.trials = 2;
  const ExperimentResult result = Experiment(matrix).run();

  ASSERT_EQ(result.trials.size(), 6u);
  EXPECT_EQ(result.failed_trials, 4u);
  for (const TrialResult& trial : result.trials) {
    if (trial.fuzzer == "thehuzz") {
      EXPECT_FALSE(trial.failed);
    } else {
      EXPECT_TRUE(trial.failed);
      EXPECT_NE(trial.error.find(trial.fuzzer), std::string::npos)
          << "error should name the unknown policy";
    }
  }
  const CellStats* missing = result.find_cell("no-such-policy");
  ASSERT_NE(missing, nullptr);
  EXPECT_EQ(missing->trials, 2u);
  EXPECT_EQ(missing->failed_trials, 2u);
  EXPECT_EQ(missing->tests.count, 0u);
  const CellStats* ok = result.find_cell("thehuzz");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->failed_trials, 0u);
  EXPECT_EQ(ok->tests.count, 2u);
}

// --- Table I-style detection experiment (acceptance case) -----------------------

TEST(ExperimentRun, SingleCallReproducesTable1StyleSpeedupReport) {
  TrialMatrix matrix;
  matrix.base.core = soc::CoreKind::kCva6;
  matrix.base.bugs = soc::BugSet::single(soc::BugId::kV5SilentLoadFault);
  matrix.base.max_tests = 400;
  matrix.base.rng_seed = 3;
  matrix.fuzzers = {"thehuzz", "exp3"};
  matrix.trials = 5;  // median over >= 5 seeded trials

  ExperimentOptions options;
  options.target_bug = soc::BugId::kV5SilentLoadFault;
  const ExperimentResult result = Experiment(matrix, options).run();

  ASSERT_EQ(result.trials.size(), 10u);
  EXPECT_EQ(result.failed_trials, 0u);
  const CellStats& base = *result.find_cell("thehuzz");
  const CellStats& exp3 = *result.find_cell("exp3");
  // V5 is the easy bug: every trial of both fuzzers detects it.
  EXPECT_EQ(base.detected_trials, 5u);
  EXPECT_EQ(exp3.detected_trials, 5u);
  for (const TrialResult& trial : result.trials) {
    EXPECT_EQ(trial.stop, StopReason::kBugDetected);
    EXPECT_TRUE(trial.target_detected);
    EXPECT_EQ(trial.detection_tests, trial.tests_executed)
        << "detection stop => tests-to-detection == tests executed";
  }
  EXPECT_DOUBLE_EQ(base.detection.median, base.tests.median);

  const SpeedupReport report = speedup_report(result, "thehuzz");
  EXPECT_EQ(report.baseline, "thehuzz");
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].fuzzer, "exp3");
  EXPECT_DOUBLE_EQ(
      report.rows[0].median_speedup,
      common::speedup_ratio(base.tests.median, exp3.tests.median));
  EXPECT_GT(report.rows[0].median_speedup, 0.0);
  EXPECT_GT(report.rows[0].mean_speedup, 0.0);

  EXPECT_THROW((void)speedup_report(result, "not-in-matrix"),
               std::invalid_argument);
}

// --- artifacts ------------------------------------------------------------------

TEST(Artifacts, CsvHasOneRowPerTrial) {
  TrialMatrix matrix = small_matrix();
  matrix.fuzzers = {"thehuzz", "ucb"};
  matrix.trials = 3;
  const ExperimentResult result = Experiment(matrix).run();

  std::ostringstream os;
  write_trials_csv(os, result);
  const std::string csv = os.str();
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 1 + 6);  // header + one row per trial
  EXPECT_NE(csv.find("trial,fuzzer,variant,run,status"), std::string::npos);
  EXPECT_NE(csv.find("elapsed_seconds"), std::string::npos);
  EXPECT_NE(csv.find("exec_workers"), std::string::npos);

  // exec_workers is environment provenance: like elapsed_seconds it is
  // dropped from byte-identity-comparable artifacts.
  ArtifactOptions no_timing;
  no_timing.include_timing = false;
  std::ostringstream os2;
  write_trials_csv(os2, result, no_timing);
  EXPECT_EQ(os2.str().find("elapsed_seconds"), std::string::npos);
  EXPECT_EQ(os2.str().find("exec_workers"), std::string::npos);
}

TEST(Artifacts, JsonCarriesSchemaTrialsAndCells) {
  TrialMatrix matrix = small_matrix();
  matrix.fuzzers = {"ucb"};
  matrix.trials = 2;
  const ExperimentResult result = Experiment(matrix).run();

  std::ostringstream os;
  write_experiment_json(os, result);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"mabfuzz-experiment-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"trial_count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"failed_trials\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"median\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_curve\""), std::string::npos);
  EXPECT_NE(json.find("\"exec_workers\": 1"), std::string::npos);
  // Balanced structure (a cheap well-formedness proxy without a parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace mabfuzz::harness
