// ISA-layer tests: field codecs, the opcode table, encode/decode
// round-trips across the entire instruction set (parameterised), strict
// illegal-encoding classification, and the disassembler.

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "isa/builder.hpp"
#include "isa/csr_defs.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"
#include "isa/opcode.hpp"

namespace mabfuzz::isa {
namespace {

// --- field codecs -------------------------------------------------------------

TEST(Fields, ImmIRoundTrip) {
  for (std::int64_t imm : {-2048L, -1L, 0L, 1L, 2047L}) {
    const Word w = set_imm_i(0, imm);
    EXPECT_EQ(imm_i(w), imm) << imm;
  }
}

TEST(Fields, ImmSRoundTrip) {
  for (std::int64_t imm : {-2048L, -7L, 0L, 5L, 2047L}) {
    const Word w = set_imm_s(0, imm);
    EXPECT_EQ(imm_s(w), imm) << imm;
  }
}

TEST(Fields, ImmBRoundTrip) {
  for (std::int64_t imm : {-4096L, -2L, 0L, 2L, 4094L}) {
    const Word w = set_imm_b(0, imm);
    EXPECT_EQ(imm_b(w), imm) << imm;
  }
}

TEST(Fields, ImmURoundTrip) {
  for (std::int64_t imm : {-2147483648L, -4096L, 0L, 4096L, 2147479552L}) {
    const Word w = set_imm_u(0, imm);
    EXPECT_EQ(imm_u(w), imm) << imm;
  }
}

TEST(Fields, ImmJRoundTrip) {
  for (std::int64_t imm : {-1048576L, -2L, 0L, 2L, 1048574L}) {
    const Word w = set_imm_j(0, imm);
    EXPECT_EQ(imm_j(w), imm) << imm;
  }
}

TEST(Fields, RegisterFields) {
  Word w = 0;
  w = set_rd(w, 31);
  w = set_rs1(w, 17);
  w = set_rs2(w, 5);
  EXPECT_EQ(rd_field(w), 31);
  EXPECT_EQ(rs1_field(w), 17);
  EXPECT_EQ(rs2_field(w), 5);
}

TEST(Fields, RegNames) {
  EXPECT_EQ(reg_name(0), "zero");
  EXPECT_EQ(reg_name(1), "ra");
  EXPECT_EQ(reg_name(2), "sp");
  EXPECT_EQ(reg_name(10), "a0");
  EXPECT_EQ(reg_name(31), "t6");
}

TEST(Fields, ImmRangeChecks) {
  EXPECT_TRUE(fits_imm_i(2047));
  EXPECT_FALSE(fits_imm_i(2048));
  EXPECT_TRUE(fits_imm_b(-4096));
  EXPECT_FALSE(fits_imm_b(-4097));
  EXPECT_FALSE(fits_imm_b(3));  // odd
  EXPECT_TRUE(fits_imm_u(0x7ffff000));
  EXPECT_FALSE(fits_imm_u(0x123));  // low bits set
  EXPECT_TRUE(fits_imm_j(1048574));
  EXPECT_FALSE(fits_imm_j(1048576));
}

// --- opcode table ---------------------------------------------------------------

TEST(OpcodeTable, EveryMnemonicHasSpec) {
  EXPECT_EQ(all_specs().size(), kNumMnemonics);
  for (const InstrSpec& s : all_specs()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_EQ(&spec(s.mnemonic), &s);
  }
}

TEST(OpcodeTable, NameLookup) {
  EXPECT_EQ(mnemonic_from_name("addi"), Mnemonic::kAddi);
  EXPECT_EQ(mnemonic_from_name("fence.i"), Mnemonic::kFenceI);
  EXPECT_EQ(mnemonic_from_name("remuw"), Mnemonic::kRemuw);
  EXPECT_EQ(mnemonic_from_name("bogus"), std::nullopt);
}

TEST(OpcodeTable, LoadStoreMetadata) {
  EXPECT_EQ(spec(Mnemonic::kLd).access_bytes, 8u);
  EXPECT_TRUE(spec(Mnemonic::kLbu).load_unsigned);
  EXPECT_FALSE(spec(Mnemonic::kLb).load_unsigned);
  EXPECT_EQ(spec(Mnemonic::kSw).access_bytes, 4u);
  EXPECT_TRUE(is_store(spec(Mnemonic::kSd)));
  EXPECT_TRUE(is_load(spec(Mnemonic::kLw)));
}

TEST(OpcodeTable, ClassPredicates) {
  EXPECT_TRUE(is_branch(spec(Mnemonic::kBeq)));
  EXPECT_TRUE(is_control_flow(spec(Mnemonic::kJal)));
  EXPECT_FALSE(is_control_flow(spec(Mnemonic::kAdd)));
  EXPECT_TRUE(is_csr_op(spec(Mnemonic::kCsrrci)));
}

// --- round-trip over the whole ISA (parameterised) --------------------------------

class RoundTrip : public ::testing::TestWithParam<Mnemonic> {};

Instruction sample_operands(const InstrSpec& s, common::Xoshiro256StarStar& rng) {
  Instruction instr;
  instr.mnemonic = s.mnemonic;
  instr.rd = static_cast<RegIndex>(rng.next_index(32));
  instr.rs1 = static_cast<RegIndex>(rng.next_index(32));
  instr.rs2 = static_cast<RegIndex>(rng.next_index(32));
  switch (s.format) {
    case Format::kI: instr.imm = rng.next_range(-2048, 2047); break;
    case Format::kIShift64: instr.imm = rng.next_range(0, 63); break;
    case Format::kIShift32: instr.imm = rng.next_range(0, 31); break;
    case Format::kS: instr.imm = rng.next_range(-2048, 2047); break;
    case Format::kB: instr.imm = rng.next_range(-2048, 2047) * 2; break;
    case Format::kU: instr.imm = rng.next_range(-(1 << 19), (1 << 19) - 1) << 12; break;
    case Format::kJ: instr.imm = rng.next_range(-(1 << 19), (1 << 19) - 1) * 2; break;
    case Format::kCsr:
    case Format::kCsrImm:
      instr.csr = static_cast<std::uint16_t>(rng.next_below(0x1000));
      break;
    case Format::kFence:
      instr.imm = static_cast<std::int64_t>(rng.next_below(0x1000));
      instr.rd = 0;
      instr.rs1 = 0;
      break;
    case Format::kNullary:
      instr.rd = instr.rs1 = instr.rs2 = 0;
      break;
    case Format::kR: break;
  }
  // Formats without certain operands must leave them zero for round-trips.
  if (!s.writes_rd && s.format != Format::kFence) {
    instr.rd = 0;
  }
  if (!s.reads_rs1 && s.format != Format::kCsrImm && s.format != Format::kFence) {
    instr.rs1 = 0;
  }
  if (!s.reads_rs2) {
    instr.rs2 = 0;
  }
  return instr;
}

TEST_P(RoundTrip, EncodeDecodeIsIdentity) {
  const InstrSpec& s = spec(GetParam());
  common::Xoshiro256StarStar rng(0xc0ffee ^ static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 64; ++i) {
    const Instruction instr = sample_operands(s, rng);
    const auto encoded = encode(instr);
    ASSERT_TRUE(encoded.has_value()) << s.name;
    const DecodeResult decoded = decode(*encoded);
    ASSERT_TRUE(decoded.ok()) << s.name << " word=" << std::hex << *encoded;
    EXPECT_EQ(decoded.instr, instr) << s.name;
  }
}

std::vector<Mnemonic> all_mnemonics() {
  std::vector<Mnemonic> v;
  for (const InstrSpec& s : all_specs()) {
    v.push_back(s.mnemonic);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllInstructions, RoundTrip,
                         ::testing::ValuesIn(all_mnemonics()),
                         [](const ::testing::TestParamInfo<Mnemonic>& param_info) {
                           std::string name(spec(param_info.param).name);
                           for (char& c : name) {
                             if (c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- encoder validation ----------------------------------------------------------

TEST(Encoder, RejectsOutOfRangeImmediates) {
  EXPECT_FALSE(encodable(make_i(Mnemonic::kAddi, 1, 2, 4000)));
  EXPECT_FALSE(encodable(make_b(Mnemonic::kBeq, 1, 2, 3)));     // odd offset
  EXPECT_FALSE(encodable(make_u(Mnemonic::kLui, 1, 0x123)));    // low bits
  EXPECT_FALSE(encodable(make_i(Mnemonic::kSlli, 1, 2, 64)));   // shamt > 63
}

TEST(Encoder, AcceptsBoundaryImmediates) {
  EXPECT_TRUE(encodable(make_i(Mnemonic::kAddi, 1, 2, -2048)));
  EXPECT_TRUE(encodable(make_i(Mnemonic::kAddi, 1, 2, 2047)));
  EXPECT_TRUE(encodable(make_i(Mnemonic::kSlli, 1, 2, 63)));
}

// --- decoder strictness ------------------------------------------------------------

TEST(Decoder, RejectsCompressedEncodings) {
  EXPECT_EQ(decode(0x00000000).status, DecodeStatus::kNotCompressed);
  EXPECT_EQ(decode(0x00000001).status, DecodeStatus::kNotCompressed);
}

TEST(Decoder, RejectsUnknownMajorOpcode) {
  // opcode 0b1010011 is OP-FP: not implemented in the integer-only model.
  EXPECT_EQ(decode(0b1010011).status, DecodeStatus::kUnknownMajorOpcode);
}

TEST(Decoder, RejectsReservedBranchFunct3) {
  // funct3 = 010 in the branch space is reserved.
  Word w = 0b1100011;
  w = static_cast<Word>(common::insert_bits(w, 12, 3, 0b010));
  EXPECT_EQ(decode(w).status, DecodeStatus::kUnknownFunct3);
}

TEST(Decoder, RejectsReservedFunct7) {
  // ADD with funct7 = 0b1000000 is reserved.
  Word w = encode_or_die(add(1, 2, 3));
  w = static_cast<Word>(common::insert_bits(w, 25, 7, 0b1000000));
  EXPECT_EQ(decode(w).status, DecodeStatus::kUnknownFunct7);
}

TEST(Decoder, RejectsNonCanonicalEcall) {
  // ECALL with rd != 0 is a bad system encoding.
  Word w = encode_or_die(ecall());
  w = set_rd(w, 3);
  EXPECT_EQ(decode(w).status, DecodeStatus::kBadSystemEncoding);
}

TEST(Decoder, AcceptsMretAndWfi) {
  EXPECT_TRUE(decode(encode_or_die(mret())).ok());
  EXPECT_TRUE(decode(encode_or_die(wfi())).ok());
  EXPECT_EQ(decode(encode_or_die(mret())).instr.mnemonic, Mnemonic::kMret);
}

TEST(Decoder, Rv64ShiftShamtBit5IsLegal) {
  // SLLI with shamt 32..63 uses bit 25; must decode on RV64.
  const DecodeResult d = decode(encode_or_die(slli(5, 6, 45)));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.instr.imm, 45);
}

TEST(Decoder, StatusNamesAreDistinct) {
  EXPECT_NE(decode_status_name(DecodeStatus::kOk),
            decode_status_name(DecodeStatus::kUnknownFunct7));
}

// --- CSR defs -----------------------------------------------------------------------

TEST(CsrDefs, ImplementedListMatchesPredicate) {
  for (const CsrAddr addr : implemented_csrs()) {
    EXPECT_TRUE(csr_implemented(addr));
    EXPECT_TRUE(csr_name(addr).has_value());
  }
  EXPECT_FALSE(csr_implemented(0x7C0));
  EXPECT_FALSE(csr_name(0x7C0).has_value());
}

TEST(CsrDefs, ReadOnlyRanges) {
  EXPECT_TRUE(csr_read_only(csr::kMvendorid));
  EXPECT_TRUE(csr_read_only(csr::kCycle));
  EXPECT_FALSE(csr_read_only(csr::kMstatus));
  EXPECT_FALSE(csr_read_only(csr::kMcycle));
}

// --- disassembler --------------------------------------------------------------------

TEST(Disasm, RendersCommonForms) {
  EXPECT_EQ(disassemble(addi(10, 11, -4)), "addi a0, a1, -4");
  EXPECT_EQ(disassemble(lw(10, 2, 8)), "lw a0, 8(sp)");
  EXPECT_EQ(disassemble(sw(2, 10, 12)), "sw a0, 12(sp)");
  EXPECT_EQ(disassemble(beq(10, 11, 16)), "beq a0, a1, .+16");
  EXPECT_EQ(disassemble(csrrw(10, csr::kMstatus, 11)), "csrrw a0, mstatus, a1");
  EXPECT_EQ(disassemble(ecall()), "ecall");
}

TEST(Disasm, IllegalWordsRenderAsData) {
  const std::string text = disassemble_word(0x00000000);
  EXPECT_NE(text.find(".word"), std::string::npos);
}

TEST(Disasm, UnknownCsrRendersHex) {
  const std::string text = disassemble(csrrs(1, 0x7C0, 0));
  EXPECT_NE(text.find("0x7c0"), std::string::npos);
}

}  // namespace
}  // namespace mabfuzz::isa
