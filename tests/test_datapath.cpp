// Per-mnemonic datapath equivalence: for EVERY instruction in the ISA,
// build directed programs that exercise it with randomised 64-bit operands
// and assert the substrate core's architectural trace is identical to the
// golden ISS trace. This is the unit-level counterpart of the random
// whole-program equivalence suite — it guarantees no mnemonic is
// undersampled.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fuzz/oracle.hpp"
#include "golden/iss.hpp"
#include "isa/builder.hpp"
#include "soc/cores.hpp"

namespace mabfuzz::soc {
namespace {

using namespace isa;  // builders
using common::Xoshiro256StarStar;

/// Emits instructions leaving the sign-extended 32-bit value `v` in `rd`.
void emit_li32(std::vector<Instruction>& program, RegIndex rd, std::int32_t v) {
  const std::int32_t hi = (v + 0x800) & static_cast<std::int32_t>(0xFFFFF000);
  const std::int32_t lo = v - hi;  // always in [-2048, 2047]
  program.push_back(lui(rd, hi));
  program.push_back(addiw(rd, rd, lo));
}

/// Emits instructions leaving an arbitrary 64-bit value in `rd`,
/// clobbering `tmp`.
void emit_li64(std::vector<Instruction>& program, RegIndex rd, RegIndex tmp,
               std::uint64_t v) {
  emit_li32(program, rd, static_cast<std::int32_t>(v >> 32));
  program.push_back(slli(rd, rd, 32));
  emit_li32(program, tmp, static_cast<std::int32_t>(v & 0xffffffff));
  // addiw sign-extended tmp; mask the upper half back off via shifts.
  program.push_back(slli(tmp, tmp, 32));
  program.push_back(srli(tmp, tmp, 32));
  program.push_back(add(rd, rd, tmp));
}

std::uint64_t interesting_value(Xoshiro256StarStar& rng) {
  switch (rng.next_index(6)) {
    case 0: return 0;
    case 1: return ~0ULL;
    case 2: return 1ULL << 63;                      // INT64_MIN
    case 3: return static_cast<std::uint64_t>(-1LL); // all ones again
    case 4: return rng.next() & 0xff;                // small
    default: return rng.next();                      // arbitrary
  }
}

class DatapathEquivalence : public ::testing::TestWithParam<Mnemonic> {
 protected:
  void run_and_compare(const std::vector<Instruction>& program,
                       const char* label) {
    const std::vector<Word> words = assemble(program);
    const RunOutput dut_out = dut_.run(words);
    const ArchResult golden_out = iss_.run(words);
    const auto mismatch = fuzz::compare(dut_out.arch, golden_out);
    ASSERT_FALSE(mismatch.has_value())
        << spec(GetParam()).name << " (" << label
        << "): " << mismatch->description;
  }

  Pipeline dut_{core_params(CoreKind::kCva6, BugSet::none())};
  golden::Iss iss_{golden_config_for(CoreKind::kCva6)};
};

TEST_P(DatapathEquivalence, RandomOperands) {
  const Mnemonic m = GetParam();
  const InstrSpec& s = spec(m);
  Xoshiro256StarStar rng(0xda7a ^ static_cast<std::uint64_t>(m));

  for (int trial = 0; trial < 24; ++trial) {
    std::vector<Instruction> program;
    const std::uint64_t a = interesting_value(rng);
    const std::uint64_t b = interesting_value(rng);
    emit_li64(program, 1, 31, a);
    emit_li64(program, 2, 31, b);

    switch (s.klass) {
      case InstrClass::kAlu:
      case InstrClass::kAluW:
      case InstrClass::kMulDiv: {
        Instruction instr;
        instr.mnemonic = m;
        instr.rd = 3;
        instr.rs1 = 1;
        instr.rs2 = 2;
        switch (s.format) {
          case Format::kI: instr.imm = rng.next_range(-2048, 2047); break;
          case Format::kIShift64: instr.imm = rng.next_range(0, 63); break;
          case Format::kIShift32: instr.imm = rng.next_range(0, 31); break;
          default: break;
        }
        program.push_back(instr);
        // Use the result so end-state compare sees derived values too.
        program.push_back(xor_(4, 3, 1));
        break;
      }

      case InstrClass::kUpper: {
        const std::int64_t imm20 = rng.next_range(-(1 << 19), (1 << 19) - 1);
        program.push_back(make_u(m, 3, imm20 << 12));
        break;
      }

      case InstrClass::kLoad:
      case InstrClass::kStore: {
        const std::int64_t scratch = static_cast<std::int32_t>(kScratchBase);
        program.push_back(lui(5, scratch));
        const unsigned bytes = s.access_bytes;
        const std::int64_t offset =
            (rng.next_range(0, 96) / static_cast<std::int64_t>(bytes)) * bytes;
        if (s.klass == InstrClass::kStore) {
          program.push_back(make_s(m, 5, 1, offset));
          program.push_back(ld(6, 5, 0));  // read something back
        } else {
          program.push_back(sd(5, 1, offset & ~7LL));  // give it data
          program.push_back(make_i(m, 6, 5, offset));
        }
        break;
      }

      case InstrClass::kBranch:
        program.push_back(make_b(m, 1, 2, 8));
        program.push_back(addi(7, 0, 111));  // skipped when taken
        program.push_back(addi(8, 0, 222));
        break;

      case InstrClass::kJump:
        if (m == Mnemonic::kJal) {
          program.push_back(jal(9, 8));
          program.push_back(addi(7, 0, 111));
          program.push_back(addi(8, 0, 222));
        } else {
          program.push_back(auipc(5, 0));
          program.push_back(jalr(9, 5, 12));
          program.push_back(addi(7, 0, 111));
          program.push_back(addi(8, 0, 222));
        }
        break;

      case InstrClass::kCsr: {
        static constexpr CsrAddr kTargets[] = {
            csr::kMscratch, csr::kMtvec, csr::kMepc, csr::kMinstret,
            csr::kMisa, csr::kMvendorid, 0x7C1 /* unimplemented */};
        const CsrAddr addr = kTargets[rng.next_index(std::size(kTargets))];
        program.push_back(make_csr(m, 3, addr,
                                   static_cast<RegIndex>(rng.next_index(32))));
        break;
      }

      case InstrClass::kFence:
        program.push_back(m == Mnemonic::kFenceI ? fence_i() : fence());
        break;

      case InstrClass::kSystem: {
        Instruction instr;
        instr.mnemonic = m;
        program.push_back(instr);
        program.push_back(addi(7, 0, 99));  // resumed-after-trap marker
        break;
      }
    }
    run_and_compare(program, "trial");
  }
}

TEST_P(DatapathEquivalence, ZeroRegisterOperands) {
  const Mnemonic m = GetParam();
  const InstrSpec& s = spec(m);
  if (s.klass != InstrClass::kAlu && s.klass != InstrClass::kAluW &&
      s.klass != InstrClass::kMulDiv) {
    GTEST_SKIP() << "x0 corner applies to register-register datapaths";
  }
  // rd = x0 (discard), sources = x0: the zero-register plumbing must match.
  Instruction discard;
  discard.mnemonic = m;
  discard.rd = 0;
  discard.rs1 = 0;
  discard.rs2 = 0;
  if (s.format == Format::kIShift64 || s.format == Format::kIShift32) {
    discard.imm = 1;
  }
  run_and_compare({discard, addi(5, 0, 7)}, "x0 corner");
}

std::vector<Mnemonic> all_mnemonics() {
  std::vector<Mnemonic> v;
  for (const InstrSpec& s : all_specs()) {
    v.push_back(s.mnemonic);
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllInstructions, DatapathEquivalence,
                         ::testing::ValuesIn(all_mnemonics()),
                         [](const ::testing::TestParamInfo<Mnemonic>& param_info) {
                           std::string name(spec(param_info.param).name);
                           for (char& c : name) {
                             if (c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace mabfuzz::soc
