// Golden-ISS tests: memory model, CSR file semantics, and instruction
// execution semantics including traps, the resume handler, counters and
// halting behaviour.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "golden/csr.hpp"
#include "golden/iss.hpp"
#include "golden/memory.hpp"
#include "isa/builder.hpp"
#include "isa/platform.hpp"

namespace mabfuzz::golden {
namespace {

using isa::HaltReason;
using isa::TrapCause;
using namespace isa;  // builders

// --- Memory -------------------------------------------------------------------

TEST(Memory, LoadStoreRoundTrip) {
  Memory mem(kDramBase, 4096);
  EXPECT_TRUE(mem.store(kDramBase + 16, 0x1122334455667788ULL, 8));
  EXPECT_EQ(mem.load(kDramBase + 16, 8), 0x1122334455667788ULL);
  EXPECT_EQ(mem.load(kDramBase + 16, 1), 0x88ULL);
  EXPECT_EQ(mem.load(kDramBase + 17, 1), 0x77ULL);
}

TEST(Memory, LittleEndianLayout) {
  Memory mem(kDramBase, 4096);
  mem.store(kDramBase, 0xAABBCCDD, 4);
  EXPECT_EQ(mem.load(kDramBase + 0, 1), 0xDDULL);
  EXPECT_EQ(mem.load(kDramBase + 3, 1), 0xAAULL);
}

TEST(Memory, OutOfRangeIsReported) {
  Memory mem(kDramBase, 4096);
  EXPECT_FALSE(mem.load(kDramBase - 1, 1).has_value());
  EXPECT_FALSE(mem.load(kDramBase + 4096, 1).has_value());
  EXPECT_FALSE(mem.load(kDramBase + 4093, 4).has_value());  // spans the edge
  EXPECT_FALSE(mem.store(0, 1, 1));
}

TEST(Memory, PhysicalAddressIs32Bit) {
  Memory mem(kDramBase, 4096);
  // Sign-extended alias of kDramBase must reach the same bytes.
  const std::uint64_t alias = 0xFFFFFFFF00000000ULL | kDramBase;
  EXPECT_TRUE(mem.store(alias + 8, 0x42, 1));
  EXPECT_EQ(mem.load(kDramBase + 8, 1), 0x42ULL);
}

TEST(Memory, WriteWordsAndFetch) {
  Memory mem(kDramBase, 4096);
  EXPECT_TRUE(mem.write_words(kDramBase, {0x11111111, 0x22222222}));
  EXPECT_EQ(mem.fetch(kDramBase + 4), 0x22222222u);
  EXPECT_FALSE(mem.write_words(kDramBase + 4092, {1, 2}));  // does not fit
}

TEST(Memory, ClearZeroes) {
  Memory mem(kDramBase, 64);
  mem.store(kDramBase, 0xff, 1);
  mem.clear();
  EXPECT_EQ(mem.load(kDramBase, 1), 0ULL);
}

// --- dirty-region reset ---------------------------------------------------------

TEST(Memory, ResetZeroesOnlyWhatWasWrittenButReadsLikeClear) {
  Memory mem(kDramBase, 256 * 1024);
  EXPECT_EQ(mem.dirty_pages(), 0u);

  // Scattered stores across distinct pages, including an 8-byte store
  // straddling a page boundary (must dirty both pages).
  ASSERT_TRUE(mem.store(kDramBase + 0x400, 0xdeadbeef, 4));
  ASSERT_TRUE(mem.store(kDramBase + 0x1'0000, ~0ULL, 8));
  ASSERT_TRUE(mem.store(kDramBase + 2 * Memory::kPageBytes - 4, ~0ULL, 8));
  ASSERT_TRUE(mem.write_words(kDramBase + 0x8000, {0x11111111, 0x22222222}));
  EXPECT_EQ(mem.dirty_pages(), 5u);  // pages 0, 16, 1, 2, 8

  mem.reset();
  EXPECT_EQ(mem.dirty_pages(), 0u);
  EXPECT_EQ(mem.load(kDramBase + 0x400, 4), 0ULL);
  EXPECT_EQ(mem.load(kDramBase + 0x1'0000, 8), 0ULL);
  EXPECT_EQ(mem.load(kDramBase + 2 * Memory::kPageBytes - 4, 8), 0ULL);
  EXPECT_EQ(mem.load(kDramBase + 0x8000, 8), 0ULL);
}

TEST(Memory, ResetIsObservationallyIdenticalToClear) {
  // Write the same pattern into two memories, reset() one, clear() the
  // other, then compare every byte.
  Memory reset_mem(kDramBase, 8 * Memory::kPageBytes);
  Memory clear_mem(kDramBase, 8 * Memory::kPageBytes);
  for (std::uint64_t offset = 0; offset < 8 * Memory::kPageBytes;
       offset += 977) {  // prime stride: hits every page, misaligned offsets
    reset_mem.store(kDramBase + offset, offset, 1);
    clear_mem.store(kDramBase + offset, offset, 1);
  }
  reset_mem.reset();
  clear_mem.clear();
  for (std::uint64_t offset = 0; offset < 8 * Memory::kPageBytes; offset += 8) {
    ASSERT_EQ(reset_mem.load(kDramBase + offset, 8),
              clear_mem.load(kDramBase + offset, 8))
        << "offset " << offset;
  }
}

TEST(Memory, WritesAfterResetAreTrackedAgain) {
  Memory mem(kDramBase, 4 * Memory::kPageBytes);
  mem.store(kDramBase + 100, 0xab, 1);
  mem.reset();
  mem.store(kDramBase + 3 * Memory::kPageBytes, 0xcd, 1);
  EXPECT_EQ(mem.dirty_pages(), 1u);
  mem.reset();
  EXPECT_EQ(mem.load(kDramBase + 3 * Memory::kPageBytes, 1), 0ULL);
  EXPECT_EQ(mem.dirty_pages(), 0u);
}

TEST(Memory, PartialTrailingPageResetsFully) {
  // A RAM whose size is not a page multiple: the trailing partial page must
  // reset without touching out-of-range bytes.
  Memory mem(kDramBase, Memory::kPageBytes + 128);
  ASSERT_TRUE(mem.store(kDramBase + Memory::kPageBytes + 120, ~0ULL, 8));
  mem.reset();
  EXPECT_EQ(mem.load(kDramBase + Memory::kPageBytes + 120, 8), 0ULL);
}

// --- CsrFile ------------------------------------------------------------------

TEST(CsrFile, ResetState) {
  CsrFile csrs;
  EXPECT_EQ(csrs.mtvec(), kHandlerBase);
  EXPECT_EQ(csrs.mepc(), 0u);
  EXPECT_EQ(csrs.mcause(), 0u);
}

TEST(CsrFile, MstatusWarlBits) {
  CsrFile csrs;
  EXPECT_EQ(csrs.write(csr::kMstatus, ~0ULL), CsrFile::WriteResult::kOk);
  const auto v = csrs.read(csr::kMstatus, 0);
  ASSERT_TRUE(v.has_value());
  // Only MIE/MPIE writable; MPP reads back as machine (0b11 << 11).
  EXPECT_EQ(*v, (1ULL << 3) | (1ULL << 7) | (0b11ULL << 11));
}

TEST(CsrFile, MisaIsReadOnlyConstant) {
  CsrFile csrs;
  const auto before = csrs.read(csr::kMisa, 0);
  EXPECT_EQ(csrs.write(csr::kMisa, 0), CsrFile::WriteResult::kOk);
  EXPECT_EQ(csrs.read(csr::kMisa, 0), before);
  // RV64IM: MXL=2, I and M bits.
  EXPECT_EQ(*before, (2ULL << 62) | (1ULL << 8) | (1ULL << 12));
}

TEST(CsrFile, UnimplementedCsrIsIllegal) {
  CsrFile csrs;
  EXPECT_FALSE(csrs.read(0x7C0, 0).has_value());
  EXPECT_EQ(csrs.write(0x7C0, 1), CsrFile::WriteResult::kIllegal);
}

TEST(CsrFile, ReadOnlyRangeWriteIsIllegal) {
  CsrFile csrs;
  EXPECT_EQ(csrs.write(csr::kMvendorid, 1), CsrFile::WriteResult::kIllegal);
  EXPECT_EQ(csrs.write(csr::kCycle, 1), CsrFile::WriteResult::kIllegal);
}

TEST(CsrFile, CounterWritesIgnored) {
  CsrFile csrs;
  EXPECT_EQ(csrs.write(csr::kMinstret, 999), CsrFile::WriteResult::kOk);
  EXPECT_EQ(csrs.read(csr::kMinstret, 5), 5ULL);  // still instret-driven
  EXPECT_EQ(csrs.read(csr::kMcycle, 5), virtual_cycle(5));
}

TEST(CsrFile, TrapEntryAndMret) {
  CsrFile csrs;
  csrs.write(csr::kMstatus, 1ULL << 3);  // MIE = 1
  csrs.enter_trap(0x80000444, TrapCause::kBreakpoint, 0x80000444);
  EXPECT_EQ(csrs.mepc(), 0x80000444u);
  EXPECT_EQ(csrs.mcause(), 3u);
  EXPECT_EQ(csrs.mtval(), 0x80000444u);
  // MIE stacked into MPIE and cleared.
  EXPECT_EQ(*csrs.read(csr::kMstatus, 0) & (1ULL << 3), 0u);
  EXPECT_NE(*csrs.read(csr::kMstatus, 0) & (1ULL << 7), 0u);
  EXPECT_EQ(csrs.take_mret(), 0x80000444u);
  EXPECT_NE(*csrs.read(csr::kMstatus, 0) & (1ULL << 3), 0u);  // MIE restored
}

TEST(CsrFile, MtvecAlignment) {
  CsrFile csrs;
  csrs.write(csr::kMtvec, 0x80001237);
  EXPECT_EQ(csrs.mtvec(), 0x80001234u);
}

TEST(CsrFile, IdentityCsrs) {
  CsrFile csrs(CsrIdentity{7, 3, 2, 1});
  EXPECT_EQ(csrs.read(csr::kMvendorid, 0), 7ULL);
  EXPECT_EQ(csrs.read(csr::kMarchid, 0), 3ULL);
  EXPECT_EQ(csrs.read(csr::kMimpid, 0), 2ULL);
  EXPECT_EQ(csrs.read(csr::kMhartid, 0), 1ULL);
}

// --- ISS execution -------------------------------------------------------------

class IssTest : public ::testing::Test {
 protected:
  isa::ArchResult run(const std::vector<isa::Instruction>& program) {
    return iss_.run(isa::assemble(program));
  }
  Iss iss_{IssConfig{}};
};

TEST_F(IssTest, StraightLineArithmetic) {
  const auto r = run({li(1, 5), li(2, 7), add(3, 1, 2), sub(4, 1, 2)});
  EXPECT_EQ(r.halt, HaltReason::kSentinel);
  EXPECT_EQ(r.regs[3], 12u);
  EXPECT_EQ(r.regs[4], static_cast<std::uint64_t>(-2));
  EXPECT_EQ(r.instret, 4u);
  EXPECT_EQ(r.commits.size(), 4u);
}

TEST_F(IssTest, X0IsHardwiredZero) {
  const auto r = run({li(0, 5), add(1, 0, 0)});
  EXPECT_EQ(r.regs[0], 0u);
  EXPECT_EQ(r.regs[1], 0u);
  EXPECT_FALSE(r.commits[0].wrote_rd);
}

TEST_F(IssTest, LuiAuipcSemantics) {
  const auto r = run({lui(1, 0x12345000), auipc(2, 0x1000)});
  EXPECT_EQ(r.regs[1], 0x12345000u);
  EXPECT_EQ(r.regs[2], kProgramBase + 4 + 0x1000);
}

TEST_F(IssTest, BranchTakenSkips) {
  const auto r = run({li(1, 1), beq(1, 1, 8), li(2, 99), li(3, 42)});
  EXPECT_EQ(r.regs[2], 0u);   // skipped
  EXPECT_EQ(r.regs[3], 42u);
}

TEST_F(IssTest, BranchNotTakenFallsThrough) {
  const auto r = run({li(1, 1), bne(1, 1, 8), li(2, 99), li(3, 42)});
  EXPECT_EQ(r.regs[2], 99u);
  EXPECT_EQ(r.regs[3], 42u);
}

TEST_F(IssTest, SignedUnsignedBranches) {
  // -1 < 1 signed, but 0xffff... > 1 unsigned.
  const auto r = run({li(1, -1), li(2, 1), blt(1, 2, 8), nop(),
                      li(3, 1),  // executed (taken skips previous nop only)
                      bltu(1, 2, 8), li(4, 77), nop()});
  EXPECT_EQ(r.regs[3], 1u);
  EXPECT_EQ(r.regs[4], 77u);  // bltu not taken: falls through
}

TEST_F(IssTest, JalLinksAndJumps) {
  const auto r = run({jal(1, 8), li(2, 99), li(3, 42)});
  EXPECT_EQ(r.regs[1], kProgramBase + 4);
  EXPECT_EQ(r.regs[2], 0u);
  EXPECT_EQ(r.regs[3], 42u);
}

TEST_F(IssTest, JalrMasksBit0) {
  // jalr target (base + 13) & ~1 = base + 12 -> lands on li(3,42).
  const auto r = run({auipc(5, 0), jalr(1, 5, 13), li(2, 99), li(3, 42)});
  EXPECT_EQ(r.regs[2], 0u);
  EXPECT_EQ(r.regs[3], 42u);
}

TEST_F(IssTest, LoadStoreRoundTrip) {
  // Build a scratch pointer with the LUI idiom (sign-extended alias works
  // through the 32-bit physical bus).
  const std::int64_t scratch = static_cast<std::int32_t>(kScratchBase);
  const auto r = run({lui(1, scratch), li(2, -123), sd(1, 2, 16), ld(3, 1, 16),
                      lw(4, 1, 16), lbu(5, 1, 16)});
  EXPECT_EQ(r.regs[3], static_cast<std::uint64_t>(-123));
  EXPECT_EQ(r.regs[4], static_cast<std::uint64_t>(-123));  // lw sign-extends
  EXPECT_EQ(r.regs[5], 0x85u);                              // -123 = 0x...85
}

TEST_F(IssTest, StoreCommitRecord) {
  const std::int64_t scratch = static_cast<std::int32_t>(kScratchBase);
  const auto r = run({lui(1, scratch), li(2, 7), sw(1, 2, 4)});
  const auto& commit = r.commits[2];
  EXPECT_TRUE(commit.wrote_mem);
  EXPECT_EQ(commit.mem_value, 7u);
  EXPECT_EQ(commit.mem_bytes, 4u);
}

TEST_F(IssTest, MisalignedLoadTraps) {
  const std::int64_t scratch = static_cast<std::int32_t>(kScratchBase);
  const auto r = run({lui(1, scratch), lw(2, 1, 2)});
  ASSERT_GE(r.commits.size(), 2u);
  EXPECT_TRUE(r.commits[1].trapped);
  EXPECT_EQ(r.commits[1].cause,
            static_cast<std::uint64_t>(TrapCause::kLoadAddrMisaligned));
  // Handler resumes after the faulting instruction; run ends at sentinel.
  EXPECT_EQ(r.halt, HaltReason::kSentinel);
}

TEST_F(IssTest, OutOfRangeLoadFaults) {
  const auto r = run({li(1, 64), lw(2, 1, 0)});  // address 64: unmapped
  EXPECT_TRUE(r.commits[1].trapped);
  EXPECT_EQ(r.commits[1].cause,
            static_cast<std::uint64_t>(TrapCause::kLoadAccessFault));
}

TEST_F(IssTest, IllegalInstructionTraps) {
  auto words = isa::assemble({nop()});
  words.push_back(0xffffffff);  // illegal
  const auto r = iss_.run(words);
  ASSERT_GE(r.commits.size(), 2u);
  EXPECT_TRUE(r.commits[1].trapped);
  EXPECT_EQ(r.commits[1].cause,
            static_cast<std::uint64_t>(TrapCause::kIllegalInstruction));
  EXPECT_EQ(r.halt, HaltReason::kSentinel);  // handler skips it
}

TEST_F(IssTest, EcallAndEbreakTrapAndResume) {
  const auto r = run({ecall(), ebreak(), li(1, 9)});
  EXPECT_TRUE(r.commits[0].trapped);
  EXPECT_EQ(r.commits[0].cause, static_cast<std::uint64_t>(TrapCause::kEcallFromM));
  EXPECT_EQ(r.regs[1], 9u);
  EXPECT_EQ(r.halt, HaltReason::kSentinel);
}

TEST_F(IssTest, HandlerClobbersOnlyScratchRegister) {
  const auto r = run({li(5, 3), ecall(), li(6, 4)});
  EXPECT_EQ(r.regs[5], 3u);
  EXPECT_EQ(r.regs[6], 4u);
  // x31 (trap scratch) holds mepc + 4 after the handler ran.
  EXPECT_EQ(r.regs[kTrapScratchReg], kProgramBase + 4 + 4);
}

TEST_F(IssTest, InstretCountsTrappingInstructions) {
  const auto r = run({ecall(), nop()});
  // ecall + 4 handler instructions + nop = 6.
  EXPECT_EQ(r.instret, 6u);
}

TEST_F(IssTest, MinstretReadIncludesItself) {
  const auto r = run({csrrs(1, csr::kMinstret, 0)});
  EXPECT_EQ(r.regs[1], 1u);
}

TEST_F(IssTest, CycleIsDeterministicFunctionOfInstret) {
  const auto r = run({nop(), nop(), csrrs(1, csr::kMcycle, 0)});
  EXPECT_EQ(r.regs[1], virtual_cycle(3));
}

TEST_F(IssTest, CsrReadWriteProtocol) {
  const auto r = run({li(1, 0x55), csrrw(2, csr::kMscratch, 1),
                      csrrs(3, csr::kMscratch, 0)});
  EXPECT_EQ(r.regs[2], 0u);     // old value
  EXPECT_EQ(r.regs[3], 0x55u);  // new value readable
  EXPECT_EQ(r.mscratch, 0x55u);
}

TEST_F(IssTest, CsrSetClearBits) {
  const auto r = run({li(1, 0x0f), csrrw(0, csr::kMscratch, 1), li(2, 0x03),
                      csrrc(0, csr::kMscratch, 2), csrrs(3, csr::kMscratch, 0)});
  EXPECT_EQ(r.regs[3], 0x0cu);
}

TEST_F(IssTest, CsrImmediateForms) {
  const auto r = run({csrrwi(0, csr::kMscratch, 21), csrrsi(1, csr::kMscratch, 2)});
  EXPECT_EQ(r.regs[1], 21u);
  EXPECT_EQ(r.mscratch, 23u);
}

TEST_F(IssTest, CsrrsWithX0DoesNotWriteReadOnly) {
  // CSRRS x1, mvendorid, x0 reads a read-only CSR without trapping.
  const auto r = run({csrrs(1, csr::kMvendorid, 0)});
  EXPECT_FALSE(r.commits[0].trapped);
  // But CSRRW to it traps.
  const auto r2 = run({csrrw(1, csr::kMvendorid, 2)});
  EXPECT_TRUE(r2.commits[0].trapped);
}

TEST_F(IssTest, UnimplementedCsrTraps) {
  const auto r = run({csrrs(1, 0x7C0, 0)});
  EXPECT_TRUE(r.commits[0].trapped);
  EXPECT_EQ(r.commits[0].cause,
            static_cast<std::uint64_t>(TrapCause::kIllegalInstruction));
}

TEST_F(IssTest, MulDivSemantics) {
  const auto r = run({li(1, -7), li(2, 2), mul(3, 1, 2), div_(4, 1, 2),
                      rem(5, 1, 2), divu(6, 1, 2)});
  EXPECT_EQ(r.regs[3], static_cast<std::uint64_t>(-14));
  EXPECT_EQ(r.regs[4], static_cast<std::uint64_t>(-3));
  EXPECT_EQ(r.regs[5], static_cast<std::uint64_t>(-1));
  EXPECT_EQ(r.regs[6], (0xFFFFFFFFFFFFFFF9ULL) / 2);
}

TEST_F(IssTest, DivisionByZeroConvention) {
  const auto r = run({li(1, 42), li(2, 0), div_(3, 1, 2), rem(4, 1, 2),
                      divu(5, 1, 2), remu(6, 1, 2)});
  EXPECT_EQ(r.regs[3], ~0ULL);
  EXPECT_EQ(r.regs[4], 42u);
  EXPECT_EQ(r.regs[5], ~0ULL);
  EXPECT_EQ(r.regs[6], 42u);
}

TEST_F(IssTest, DivisionOverflowConvention) {
  const auto r = run({li(1, 1), slli(1, 1, 63),  // INT64_MIN
                      li(2, -1), div_(3, 1, 2), rem(4, 1, 2)});
  EXPECT_EQ(r.regs[3], 1ULL << 63);
  EXPECT_EQ(r.regs[4], 0u);
}

TEST_F(IssTest, WWordOpsSignExtend) {
  const auto r = run({li(1, 1), slli(1, 1, 31),  // 0x80000000
                      addiw(2, 1, 0),            // sext32
                      addw(3, 1, 1)});
  EXPECT_EQ(r.regs[2], 0xFFFFFFFF80000000ULL);
  EXPECT_EQ(r.regs[3], 0u);  // 0x80000000+0x80000000 = 0x100000000 -> sext32 = 0
}

TEST_F(IssTest, BudgetBoundsInfiniteLoop) {
  const auto r = run({jal(0, 0)});  // self-loop at the first instruction
  EXPECT_EQ(r.halt, HaltReason::kBudget);
  EXPECT_EQ(r.commits.size(), kDefaultInstructionBudget);
}

TEST_F(IssTest, WildJumpOutOfDramHalts) {
  const auto r = run({li(1, 16), jalr(0, 1, 0)});  // jump to 0x10: unmapped
  EXPECT_EQ(r.halt, HaltReason::kFetchOutOfRange);
}

TEST_F(IssTest, MisalignedJumpTargetTrapsOnFetch) {
  const auto r = run({auipc(1, 0), jalr(0, 1, 10)});  // target = base+10 (bit1)
  // The jump commits, then a fetch-misaligned pseudo-commit follows.
  ASSERT_GE(r.commits.size(), 3u);
  EXPECT_TRUE(r.commits[2].trapped);
  EXPECT_EQ(r.commits[2].cause,
            static_cast<std::uint64_t>(TrapCause::kInstrAddrMisaligned));
  EXPECT_EQ(r.commits[2].word, 0u);  // no instruction fetched
}

TEST_F(IssTest, FenceInstructionsAreNops) {
  const auto r = run({fence(), fence_i(), li(1, 5)});
  EXPECT_EQ(r.regs[1], 5u);
  EXPECT_EQ(r.instret, 3u);
}

TEST_F(IssTest, MretOutsideHandlerJumpsToMepc) {
  const auto r = run({li(1, 0), csrrw(0, csr::kMepc, 1), mret()});
  // mepc = 0 -> pc = 0 -> out of DRAM -> halt.
  EXPECT_EQ(r.halt, HaltReason::kFetchOutOfRange);
}

TEST_F(IssTest, SelfModifyingCodeExecutesNewWord) {
  // Store an "li x5, 42" over the following nop, then run through it.
  const isa::Word patch = isa::encode_or_die(li(5, 42));
  const std::int64_t lo = static_cast<std::int32_t>(patch & 0xfff);
  const std::int64_t hi =
      static_cast<std::int32_t>(((patch + 0x800) & 0xfffff000U));
  const auto r = run({
      lui(1, hi), addiw(1, 1, lo),     // x1 = patch word
      auipc(2, 0), sw(2, 1, 8),        // overwrite the word 8 past the auipc
      nop(),                           // patched to li x5, 42
  });
  EXPECT_EQ(r.regs[5], 42u);
}

TEST_F(IssTest, DeterministicAcrossRuns) {
  const std::vector<isa::Instruction> program = {li(1, 3), mul(2, 1, 1),
                                                 ecall(), li(3, 1)};
  const auto a = iss_.run(isa::assemble(program));
  const auto b = iss_.run(isa::assemble(program));
  EXPECT_EQ(a.commits.size(), b.commits.size());
  EXPECT_EQ(a.regs, b.regs);
  EXPECT_EQ(a.instret, b.instret);
}

// --- CSR WARL properties (parameterised over every implemented CSR) -------------

class CsrWarl : public ::testing::TestWithParam<isa::CsrAddr> {};

TEST_P(CsrWarl, WritesAreIdempotentUnderReadback) {
  // WARL invariant: writing back a value that was just read must not
  // change the CSR (the implementation may mask writes, but the masked
  // result is a fixed point).
  const isa::CsrAddr addr = GetParam();
  if (isa::csr_read_only(addr)) {
    GTEST_SKIP() << "read-only CSR";
  }
  CsrFile csrs;
  common::Xoshiro256StarStar rng(addr * 2654435761u);
  for (int i = 0; i < 20; ++i) {
    (void)csrs.write(addr, rng.next());
    const auto a = csrs.read(addr, 7);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(csrs.write(addr, *a), CsrFile::WriteResult::kOk);
    const auto b = csrs.read(addr, 7);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b) << "CSR 0x" << std::hex << addr;
  }
}

TEST_P(CsrWarl, ReadOnlyCsrsRejectWrites) {
  const isa::CsrAddr addr = GetParam();
  CsrFile csrs;
  EXPECT_TRUE(csrs.read(addr, 0).has_value());
  if (isa::csr_read_only(addr)) {
    EXPECT_EQ(csrs.write(addr, 1), CsrFile::WriteResult::kIllegal);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllImplemented, CsrWarl,
    ::testing::ValuesIn(std::vector<isa::CsrAddr>(
        isa::implemented_csrs().begin(), isa::implemented_csrs().end())),
    [](const ::testing::TestParamInfo<isa::CsrAddr>& param_info) {
      return std::string(*isa::csr_name(param_info.param));
    });

// --- ISS whole-program invariants (property style) --------------------------------

TEST(IssInvariants, HoldOnRandomPrograms) {
  Iss iss{IssConfig{}};
  common::Xoshiro256StarStar rng(0xbeef);
  for (int i = 0; i < 200; ++i) {
    // Random words, not even legal programs: invariants must still hold.
    std::vector<isa::Word> program;
    const std::size_t len = 4 + rng.next_index(24);
    for (std::size_t k = 0; k < len; ++k) {
      program.push_back(static_cast<isa::Word>(rng.next()));
    }
    const auto r = iss.run(program);
    // x0 is hardwired to zero.
    EXPECT_EQ(r.regs[0], 0u);
    // mepc is always 4-aligned (IALIGN=32 WARL mask).
    EXPECT_EQ(r.mepc & 0b11, 0u);
    // instret counts every commit except misaligned-fetch pseudo-commits
    // (which fetch no instruction: word == 0 with cause 0).
    std::uint64_t fetched = 0;
    for (const auto& c : r.commits) {
      const bool pseudo =
          c.trapped && c.word == 0 &&
          c.cause == static_cast<std::uint64_t>(
                         isa::TrapCause::kInstrAddrMisaligned);
      fetched += !pseudo;
      // No commit both traps and writes architectural state.
      EXPECT_FALSE(c.trapped && c.wrote_rd);
      EXPECT_FALSE(c.trapped && c.wrote_mem);
      // rd writes never target x0.
      if (c.wrote_rd) {
        EXPECT_NE(c.rd, 0);
      }
    }
    EXPECT_EQ(r.instret, fetched);
  }
}

}  // namespace
}  // namespace mabfuzz::golden
