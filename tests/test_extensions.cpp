// Tests for the Sec. V extensions: adaptive mutation-operator selection,
// adaptive seed-length selection, Thompson sampling, and their scheduler
// integration.

#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "core/scheduler.hpp"
#include "fuzz/backend.hpp"
#include "mab/registry.hpp"
#include "mab/thompson.hpp"

namespace mabfuzz::core {
namespace {

std::unique_ptr<mab::Bandit> op_bandit(double epsilon = 0.1) {
  mab::BanditConfig config;
  config.num_arms = mutation::kNumOps;
  config.epsilon = epsilon;
  return mab::make_bandit("epsilon-greedy", config);
}

// --- MabOperatorPolicy ----------------------------------------------------------

TEST(MabOperatorPolicy, LearnsRiggedOperatorRewards) {
  MabOperatorPolicy policy(op_bandit(0.05));
  common::Xoshiro256StarStar rng(3);
  // Reward only byteflip; every other operator earns nothing.
  for (int i = 0; i < 600; ++i) {
    const mutation::Op op = policy.choose(rng);
    policy.feedback(op, op == mutation::Op::kByteFlip ? 1.0 : 0.0);
  }
  int byteflip = 0;
  for (int i = 0; i < 200; ++i) {
    byteflip += policy.choose(rng) == mutation::Op::kByteFlip;
  }
  EXPECT_GT(byteflip, 120);  // concentrated on the rewarded arm
}

TEST(MabOperatorPolicy, WrongArmCountAborts) {
  mab::BanditConfig config;
  config.num_arms = 3;
  EXPECT_DEATH(MabOperatorPolicy(mab::make_bandit("ucb", config)),
               "");
}

TEST(MabOperatorPolicy, DrivesEngineChoices) {
  auto policy = std::make_shared<MabOperatorPolicy>(op_bandit(0.0));
  // Teach it to love instr_swap before wiring into the engine.
  common::Xoshiro256StarStar rng(5);
  for (int i = 0; i < 200; ++i) {
    const mutation::Op op = policy->choose(rng);
    policy->feedback(op, op == mutation::Op::kInstrSwap ? 1.0 : 0.0);
  }
  mutation::Engine engine(mutation::EngineConfig{},
                          common::Xoshiro256StarStar(7), policy);
  std::vector<isa::Word> parent = {0x13, 0x13, 0x93, 0x113};
  for (int i = 0; i < 100; ++i) {
    (void)engine.mutate(parent);
  }
  const auto swap_count =
      engine.op_counts()[static_cast<std::size_t>(mutation::Op::kInstrSwap)];
  std::uint64_t total = 0;
  for (const auto c : engine.op_counts()) {
    total += c;
  }
  EXPECT_GT(swap_count, total / 2);  // the learned preference dominates
}

// --- SeedLengthPolicy -----------------------------------------------------------

std::unique_ptr<mab::Bandit> len_bandit(std::size_t arms) {
  mab::BanditConfig config;
  config.num_arms = arms;
  config.epsilon = 0.05;
  return mab::make_bandit("epsilon-greedy", config);
}

TEST(SeedLengthPolicy, ChoosesFromConfiguredLengths) {
  SeedLengthPolicy policy({12, 20, 28}, len_bandit(3));
  for (int i = 0; i < 50; ++i) {
    const unsigned length = policy.choose();
    EXPECT_TRUE(length == 12 || length == 20 || length == 28);
  }
}

TEST(SeedLengthPolicy, LearnsBestLength) {
  SeedLengthPolicy policy({12, 20, 28}, len_bandit(3));
  for (int i = 0; i < 400; ++i) {
    const unsigned length = policy.choose();
    policy.feedback(length, length == 28 ? 10.0 : 1.0);
  }
  int best = 0;
  for (int i = 0; i < 100; ++i) {
    best += policy.choose() == 28;
  }
  EXPECT_GT(best, 60);
}

TEST(SeedLengthPolicy, IgnoresUnknownLengthFeedback) {
  SeedLengthPolicy policy({12, 20}, len_bandit(2));
  policy.feedback(999, 100.0);  // silently ignored
  SUCCEED();
}

TEST(SeedLengthPolicy, MismatchedArmsAbort) {
  EXPECT_DEATH(SeedLengthPolicy({12, 20, 28}, len_bandit(2)), "");
}

// --- scheduler integration ---------------------------------------------------------

TEST(AdaptiveScheduler, RunsWithOperatorPolicy) {
  fuzz::BackendConfig backend_config;
  backend_config.core = soc::CoreKind::kCva6;
  auto policy = std::make_shared<MabOperatorPolicy>(op_bandit());
  backend_config.operator_policy = policy;
  fuzz::Backend backend(backend_config);

  MabFuzzConfig config;
  mab::BanditConfig bandit_config;
  bandit_config.num_arms = config.num_arms;
  MabScheduler scheduler(backend,
                         mab::make_bandit("ucb", bandit_config),
                         config);
  for (int i = 0; i < 300; ++i) {
    scheduler.step();
  }
  EXPECT_GT(scheduler.accumulated().covered(), 0u);
}

TEST(AdaptiveScheduler, RunsWithLengthPolicy) {
  fuzz::BackendConfig backend_config;
  backend_config.core = soc::CoreKind::kCva6;
  fuzz::Backend backend(backend_config);

  MabFuzzConfig config;
  config.gamma = 2;  // force resets so multiple lengths get sampled
  config.length_policy =
      std::make_shared<SeedLengthPolicy>(std::vector<unsigned>{8, 20, 40},
                                         len_bandit(3));
  mab::BanditConfig bandit_config;
  bandit_config.num_arms = config.num_arms;
  MabScheduler scheduler(backend,
                         mab::make_bandit("ucb", bandit_config),
                         config);
  for (int i = 0; i < 400; ++i) {
    scheduler.step();
  }
  EXPECT_GT(scheduler.total_resets(), 0u);
  EXPECT_GT(scheduler.accumulated().covered(), 0u);
}

TEST(AdaptiveScheduler, SeedLengthsVaryAcrossArms) {
  fuzz::BackendConfig backend_config;
  backend_config.core = soc::CoreKind::kCva6;
  fuzz::Backend backend(backend_config);

  MabFuzzConfig config;
  config.length_policy = std::make_shared<SeedLengthPolicy>(
      std::vector<unsigned>{8, 40}, len_bandit(2));
  mab::BanditConfig bandit_config;
  bandit_config.num_arms = config.num_arms;
  MabScheduler scheduler(backend,
                         mab::make_bandit("ucb", bandit_config),
                         config);
  std::set<std::size_t> seed_sizes;
  for (std::size_t a = 0; a < scheduler.num_arms(); ++a) {
    seed_sizes.insert(scheduler.arm(a).seed().words.size());
  }
  // With 10 arms drawing from {8, 40}, both lengths almost surely appear.
  EXPECT_GE(seed_sizes.size(), 2u);
}

// --- Thompson sampling ---------------------------------------------------------------

TEST(ThompsonTest, IncrementalMeanUpdate) {
  mab::Thompson bandit(3, common::Xoshiro256StarStar(11));
  bandit.update(1, 4.0);
  bandit.update(1, 6.0);
  EXPECT_DOUBLE_EQ(bandit.mean(1), 5.0);
  EXPECT_EQ(bandit.n(1), 2u);
}

TEST(ThompsonTest, ConvergesToBestArm) {
  mab::Thompson bandit(4, common::Xoshiro256StarStar(13));
  common::Xoshiro256StarStar env(17);
  int late_best = 0;
  for (int t = 0; t < 3000; ++t) {
    const std::size_t arm = bandit.select();
    const double reward = env.next_bool(arm == 2 ? 0.8 : 0.2) ? 1.0 : 0.0;
    bandit.update(arm, reward);
    if (t >= 2250) {
      late_best += arm == 2;
    }
  }
  EXPECT_GT(late_best, 500);  // > 2/3 of late pulls on the best arm
}

TEST(ThompsonTest, ResetRestoresPrior) {
  mab::Thompson bandit(2, common::Xoshiro256StarStar(19));
  for (int i = 0; i < 50; ++i) {
    bandit.update(0, 1.0);
  }
  bandit.reset_arm(0);
  EXPECT_DOUBLE_EQ(bandit.mean(0), 0.0);
  EXPECT_EQ(bandit.n(0), 0u);
}

TEST(ThompsonTest, FactoryBuildsIt) {
  mab::BanditConfig config;
  config.num_arms = 5;
  const auto bandit = mab::make_bandit("thompson", config);
  EXPECT_EQ(bandit->name(), "thompson");
  EXPECT_EQ(bandit->num_arms(), 5u);
  EXPECT_FALSE(bandit->requires_normalized_reward());
}

// --- TestCase provenance ---------------------------------------------------------------

TEST(OperatorProvenance, MutantsRecordAppliedOps) {
  fuzz::BackendConfig config;
  fuzz::Backend backend(config);
  const fuzz::TestCase seed = backend.make_seed();
  EXPECT_TRUE(seed.mutation_ops.empty());
  const fuzz::TestCase mutant = backend.make_mutant(seed);
  EXPECT_FALSE(mutant.mutation_ops.empty());
  for (const std::uint8_t op : mutant.mutation_ops) {
    EXPECT_LT(op, mutation::kNumOps);
  }
}

TEST(OperatorProvenance, ExplicitSeedLengthHonoured) {
  fuzz::BackendConfig config;
  fuzz::Backend backend(config);
  EXPECT_EQ(backend.make_seed(8).words.size(), 8u);
  EXPECT_EQ(backend.make_seed(40).words.size(), 40u);
  EXPECT_EQ(backend.make_seed(0).words.size(),
            config.seedgen.instructions_per_seed);
}

}  // namespace
}  // namespace mabfuzz::core
