// Injected-bug validation: for each of V1-V7, a directed trigger program
// must (a) fire the bug's gate, (b) produce a golden-model mismatch, and
// (c) produce NO mismatch when the bug is disabled. This proves detection
// comes from differential testing, not from the gate itself.

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "fuzz/oracle.hpp"
#include "golden/iss.hpp"
#include "isa/builder.hpp"
#include "isa/encoder.hpp"
#include "soc/cores.hpp"

namespace mabfuzz::soc {
namespace {

using namespace isa;  // builders

struct TriggerOutcome {
  bool fired = false;
  bool mismatch = false;
  std::string description;
};

TriggerOutcome run_trigger(CoreKind kind, BugSet bugs, BugId bug,
                           const std::vector<Word>& program) {
  Pipeline dut(core_params(kind, bugs));
  golden::Iss iss(golden_config_for(kind));
  const RunOutput dut_out = dut.run(program);
  const ArchResult golden_out = iss.run(program);
  TriggerOutcome out;
  for (const BugFiring& f : dut_out.firings) {
    out.fired |= f.id == bug;
  }
  if (const auto mismatch = fuzz::compare(dut_out.arch, golden_out)) {
    out.mismatch = true;
    out.description = mismatch->description;
  }
  return out;
}

void expect_detected_and_gated(CoreKind kind, BugId bug,
                               const std::vector<Word>& program) {
  const auto with_bug = run_trigger(kind, BugSet::single(bug), bug, program);
  EXPECT_TRUE(with_bug.fired) << bug_info(bug).name << " gate did not fire";
  EXPECT_TRUE(with_bug.mismatch)
      << bug_info(bug).name << " fired but caused no architectural mismatch";

  const auto without = run_trigger(kind, BugSet::none(), bug, program);
  EXPECT_FALSE(without.fired);
  EXPECT_FALSE(without.mismatch)
      << "clean core mismatched: " << without.description;
}

// --- V1: FENCE.I decoded incorrectly ------------------------------------------

std::vector<Word> v1_trigger() {
  std::vector<Word> program = assemble({li(1, 5)});
  Word w = encode_or_die(fence_i());
  w = set_rd(w, 7);  // non-canonical rd bits
  program.push_back(w);
  program.push_back(encode_or_die(add(2, 7, 0)));  // observe x7
  return program;
}

TEST(BugV1, FenceIWithRdBitsDetected) {
  expect_detected_and_gated(CoreKind::kCva6, BugId::kV1FenceIDecode, v1_trigger());
}

TEST(BugV1, CanonicalFenceIDoesNotFire) {
  const auto out = run_trigger(CoreKind::kCva6,
                               BugSet::single(BugId::kV1FenceIDecode),
                               BugId::kV1FenceIDecode, assemble({fence_i()}));
  EXPECT_FALSE(out.fired);
  EXPECT_FALSE(out.mismatch);
}

// --- V2: illegal instructions execute ------------------------------------------

std::vector<Word> v2_trigger() {
  std::vector<Word> program = assemble({li(1, 3), li(2, 4)});
  Word w = encode_or_die(addw(3, 1, 2));
  w = static_cast<Word>(common::insert_bits(w, 25, 7, 0b1000000));  // reserved
  program.push_back(w);
  return program;
}

TEST(BugV2, ReservedFunct7Detected) {
  expect_detected_and_gated(CoreKind::kCva6, BugId::kV2IllegalOpExec, v2_trigger());
}

TEST(BugV2, LegalEncodingsUnaffected) {
  const auto out =
      run_trigger(CoreKind::kCva6, BugSet::single(BugId::kV2IllegalOpExec),
                  BugId::kV2IllegalOpExec, assemble({addw(3, 1, 2)}));
  EXPECT_FALSE(out.fired);
  EXPECT_FALSE(out.mismatch);
}

TEST(BugV2, OpSpaceNotAffected) {
  // The comparator fault is in the OP-32 rows; plain OP reserved encodings
  // still trap on both sides.
  std::vector<Word> program = assemble({li(1, 3)});
  Word w = encode_or_die(add(3, 1, 1));
  w = static_cast<Word>(common::insert_bits(w, 25, 7, 0b0010000));
  program.push_back(w);
  const auto out = run_trigger(CoreKind::kCva6,
                               BugSet::single(BugId::kV2IllegalOpExec),
                               BugId::kV2IllegalOpExec, program);
  EXPECT_FALSE(out.fired);
  EXPECT_FALSE(out.mismatch);
}

// --- V3: exception cause overwritten by queued pre-decode exception ---------------

std::vector<Word> v3_trigger() {
  // A load access fault (cause 5) with an illegal word within the 3-deep
  // fetch queue ahead of it; buggy cause becomes illegal-instruction (2).
  std::vector<Word> program = assemble({li(1, 64), lw(2, 1, 0)});
  // Queued mis-encoded LOAD (funct3=111 is reserved): opcode 0x03 | f3 111.
  program.push_back(0x00007003);
  program.push_back(encode_or_die(jal(0, 0)));
  return program;
}

TEST(BugV3, QueuedExceptionOverwritesCause) {
  expect_detected_and_gated(CoreKind::kCva6, BugId::kV3ExcQueueCause, v3_trigger());
}

TEST(BugV3, NoQueuedIllegalNoFiring) {
  const auto out = run_trigger(
      CoreKind::kCva6, BugSet::single(BugId::kV3ExcQueueCause),
      BugId::kV3ExcQueueCause, assemble({li(1, 64), lw(2, 1, 0), nop(), nop()}));
  EXPECT_FALSE(out.fired);
  EXPECT_FALSE(out.mismatch);
}

TEST(BugV3, NonMemoryIllegalWordDoesNotRace) {
  // An illegal word outside the LOAD/STORE pre-decode path does not reach
  // the queue's exception slot.
  std::vector<Word> program = assemble({li(1, 64), lw(2, 1, 0)});
  program.push_back(0xffffffff);
  const auto out = run_trigger(CoreKind::kCva6,
                               BugSet::single(BugId::kV3ExcQueueCause),
                               BugId::kV3ExcQueueCause, program);
  EXPECT_FALSE(out.fired);
}

// --- V4: lost writeback under back-to-back dirty evictions -------------------------

std::vector<Word> v4_trigger() {
  // CVA6 D$: 2 sets x 1 way, 32B lines -> set stride 64B. Scratch+448 has
  // address bits [8:6] set (the broken bank-decode pattern): dirty it,
  // evict it (writeback dropped), reload it and observe the stale value.
  const std::int64_t scratch = static_cast<std::int32_t>(kScratchBase);
  return assemble({
      lui(1, scratch),
      li(2, 0x22), sd(1, 2, 448),  // aliased line B dirty
      ld(4, 1, 384),               // same-set line C: evicts B, wb DROPPED
      ld(5, 1, 448),               // reload B: stale 0, golden sees 0x22
  });
}

TEST(BugV4, LostWritebackDetected) {
  expect_detected_and_gated(CoreKind::kCva6, BugId::kV4LostWriteback, v4_trigger());
}

TEST(BugV4, NonAliasedLinesWriteBackFine) {
  const std::int64_t scratch = static_cast<std::int32_t>(kScratchBase);
  const auto program = assemble({
      lui(1, scratch),
      li(2, 0x11), sd(1, 2, 0),     // normal line dirty
      ld(3, 1, 128), ld(4, 1, 256),  // evict it (writeback survives)
      ld(5, 1, 0),
  });
  const auto out = run_trigger(CoreKind::kCva6,
                               BugSet::single(BugId::kV4LostWriteback),
                               BugId::kV4LostWriteback, program);
  EXPECT_FALSE(out.mismatch);
}

// --- V5: silent load fault -----------------------------------------------------------

TEST(BugV5, SilentLoadFaultDetected) {
  expect_detected_and_gated(CoreKind::kCva6, BugId::kV5SilentLoadFault,
                            assemble({li(1, 64), lw(2, 1, 0)}));
}

TEST(BugV5, StoresStillFault) {
  // V5 affects loads only; a bad store must still trap identically.
  const auto out = run_trigger(CoreKind::kCva6,
                               BugSet::single(BugId::kV5SilentLoadFault),
                               BugId::kV5SilentLoadFault,
                               assemble({li(1, 64), sw(1, 2, 0)}));
  EXPECT_FALSE(out.mismatch);
}

// --- V6: unimplemented CSR X-values ---------------------------------------------------

TEST(BugV6, CustomRangeCsrDetected) {
  expect_detected_and_gated(CoreKind::kCva6, BugId::kV6CsrXValue,
                            assemble({csrrs(1, 0x7C3, 0)}));
}

TEST(BugV6, ImplementedCsrsUnaffected) {
  const auto out = run_trigger(
      CoreKind::kCva6, BugSet::single(BugId::kV6CsrXValue), BugId::kV6CsrXValue,
      assemble({csrrs(1, csr::kMscratch, 0), csrrs(2, csr::kMinstret, 0)}));
  EXPECT_FALSE(out.fired);
  EXPECT_FALSE(out.mismatch);
}

TEST(BugV6, OutsideWindowStillTraps) {
  // 0x123 is unimplemented but outside the X-value window: traps on both.
  const auto out = run_trigger(CoreKind::kCva6,
                               BugSet::single(BugId::kV6CsrXValue),
                               BugId::kV6CsrXValue, assemble({csrrs(1, 0x123, 0)}));
  EXPECT_FALSE(out.fired);
  EXPECT_FALSE(out.mismatch);
}

// --- V7: EBREAK does not count in minstret ----------------------------------------------

std::vector<Word> v7_trigger() {
  return assemble({ebreak(), csrrs(1, csr::kMinstret, 0)});
}

TEST(BugV7, EbreakInstretDetected) {
  expect_detected_and_gated(CoreKind::kRocket, BugId::kV7EbreakInstret,
                            v7_trigger());
}

TEST(BugV7, WithoutCounterReadNoMismatch) {
  // The firing is architecturally silent until a counter read observes it —
  // this is what makes V7 an exploration-heavy target (paper Sec. IV-B).
  const auto out = run_trigger(CoreKind::kRocket,
                               BugSet::single(BugId::kV7EbreakInstret),
                               BugId::kV7EbreakInstret, assemble({ebreak(), nop()}));
  EXPECT_TRUE(out.fired);
  EXPECT_FALSE(out.mismatch);
}

TEST(BugV7, EcallStillCounts) {
  const auto out = run_trigger(CoreKind::kRocket,
                               BugSet::single(BugId::kV7EbreakInstret),
                               BugId::kV7EbreakInstret,
                               assemble({ecall(), csrrs(1, csr::kMinstret, 0)}));
  EXPECT_FALSE(out.fired);
  EXPECT_FALSE(out.mismatch);
}

// --- bug metadata ---------------------------------------------------------------------------

TEST(BugTable, MetadataComplete) {
  EXPECT_EQ(all_bugs().size(), kNumBugs);
  for (const BugInfo& info : all_bugs()) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.cwe.empty());
    EXPECT_TRUE(info.core == "cva6" || info.core == "rocket");
  }
  EXPECT_EQ(bug_info(BugId::kV7EbreakInstret).core, "rocket");
}

TEST(BugSetOps, EnableDisableQuery) {
  BugSet s;
  EXPECT_TRUE(s.empty());
  s.enable(BugId::kV3ExcQueueCause);
  EXPECT_TRUE(s.enabled(BugId::kV3ExcQueueCause));
  EXPECT_FALSE(s.enabled(BugId::kV4LostWriteback));
  s.disable(BugId::kV3ExcQueueCause);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(BugSet::all().enabled(BugId::kV7EbreakInstret), true);
}

TEST(DefaultBugs, MatchPaperTableI) {
  const BugSet cva6 = default_bugs(CoreKind::kCva6);
  for (const BugId id :
       {BugId::kV1FenceIDecode, BugId::kV2IllegalOpExec, BugId::kV3ExcQueueCause,
        BugId::kV4LostWriteback, BugId::kV5SilentLoadFault, BugId::kV6CsrXValue}) {
    EXPECT_TRUE(cva6.enabled(id));
  }
  EXPECT_FALSE(cva6.enabled(BugId::kV7EbreakInstret));
  EXPECT_TRUE(default_bugs(CoreKind::kRocket).enabled(BugId::kV7EbreakInstret));
  EXPECT_TRUE(default_bugs(CoreKind::kBoom).empty());
}

}  // namespace
}  // namespace mabfuzz::soc
