// Harness tests: session construction for every fuzzer kind, detection
// measurement, coverage curves, the Fig. 4 speedup/increment math, the
// parallel run driver and the report renderers.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "harness/curves.hpp"
#include "harness/detection.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace mabfuzz::harness {
namespace {

ExperimentConfig small_config(FuzzerKind kind) {
  ExperimentConfig config;
  config.core = soc::CoreKind::kCva6;
  config.fuzzer = kind;
  config.max_tests = 150;
  return config;
}

// --- session ------------------------------------------------------------------

class SessionBuild : public ::testing::TestWithParam<FuzzerKind> {};

TEST_P(SessionBuild, ConstructsAndSteps) {
  Session session(small_config(GetParam()));
  EXPECT_FALSE(std::string(session.fuzzer().name()).empty());
  for (int i = 0; i < 20; ++i) {
    session.fuzzer().step();
  }
  EXPECT_GT(session.fuzzer().accumulated().covered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFuzzers, SessionBuild, ::testing::ValuesIn(kAllFuzzers),
                         [](const ::testing::TestParamInfo<FuzzerKind>& info) {
                           std::string name(fuzzer_name(info.param));
                           std::string out;
                           for (const char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out;
                         });

TEST(FuzzerNames, AreDistinct) {
  EXPECT_NE(fuzzer_name(FuzzerKind::kTheHuzz), fuzzer_name(FuzzerKind::kMabUcb));
  EXPECT_EQ(kAllFuzzers.size(), 4u);
  EXPECT_EQ(kMabFuzzers.size(), 3u);
}

// --- detection -------------------------------------------------------------------

TEST(Detection, FindsEasyBug) {
  ExperimentConfig config = small_config(FuzzerKind::kTheHuzz);
  config.bugs = soc::BugSet::single(soc::BugId::kV5SilentLoadFault);
  config.max_tests = 500;
  const DetectionResult r =
      measure_detection(config, soc::BugId::kV5SilentLoadFault);
  EXPECT_TRUE(r.detected);
  EXPECT_GT(r.tests_to_detection, 0u);
  EXPECT_LE(r.tests_to_detection, 500u);
}

TEST(Detection, UndetectedIsCensored) {
  ExperimentConfig config = small_config(FuzzerKind::kTheHuzz);
  config.bugs = soc::BugSet::none();  // nothing can ever mismatch
  config.max_tests = 50;
  const DetectionResult r =
      measure_detection(config, soc::BugId::kV4LostWriteback);
  EXPECT_FALSE(r.detected);
  EXPECT_EQ(r.tests_to_detection, 50u);
}

TEST(Detection, MultiRunAggregates) {
  ExperimentConfig config = small_config(FuzzerKind::kMabUcb);
  config.bugs = soc::BugSet::single(soc::BugId::kV5SilentLoadFault);
  config.max_tests = 500;
  const DetectionSummary s =
      measure_detection_multi(config, soc::BugId::kV5SilentLoadFault, 3);
  EXPECT_EQ(s.runs, 3u);
  EXPECT_EQ(s.detected_runs, 3u);
  EXPECT_GT(s.mean_tests, 0.0);
  EXPECT_EQ(s.per_run_tests.size(), 3u);
}

// --- curves -----------------------------------------------------------------------

TEST(Curves, MonotoneNonDecreasing) {
  ExperimentConfig config = small_config(FuzzerKind::kTheHuzz);
  config.max_tests = 120;
  const CoverageCurve curve = measure_coverage(config, 10);
  ASSERT_FALSE(curve.grid.empty());
  for (std::size_t i = 1; i < curve.covered.size(); ++i) {
    EXPECT_GE(curve.covered[i], curve.covered[i - 1]);
  }
  EXPECT_EQ(curve.grid.back(), 120u);
  EXPECT_GT(curve.universe, 0u);
}

TEST(Curves, MultiRunAveragesOnSameGrid) {
  ExperimentConfig config = small_config(FuzzerKind::kTheHuzz);
  config.max_tests = 60;
  const CoverageCurve curve = measure_coverage_multi(config, 20, 2);
  EXPECT_EQ(curve.grid.size(), 3u);  // 20, 40, 60
  EXPECT_GT(curve.final_covered, 0.0);
}

TEST(Curves, TestsToReach) {
  CoverageCurve curve;
  curve.grid = {10, 20, 30};
  curve.covered = {5, 15, 20};
  curve.final_covered = 20;
  EXPECT_EQ(tests_to_reach(curve, 5), 10u);
  EXPECT_EQ(tests_to_reach(curve, 6), 20u);
  EXPECT_EQ(tests_to_reach(curve, 21), 0u);  // never reached
}

TEST(Curves, SpeedupMath) {
  CoverageCurve base;
  base.grid = {100, 200, 300};
  base.covered = {50, 70, 80};
  base.final_covered = 80;
  CoverageCurve fast;
  fast.grid = {100, 200, 300};
  fast.covered = {80, 90, 95};
  fast.final_covered = 95;
  // fast reaches 80 at its first sample (100 tests): 300/100 = 3x.
  EXPECT_DOUBLE_EQ(coverage_speedup(base, fast), 3.0);
  // A slower candidate that never reaches the target gets < 1.
  CoverageCurve slow;
  slow.grid = {100, 200, 300};
  slow.covered = {10, 20, 40};
  slow.final_covered = 40;
  EXPECT_LT(coverage_speedup(base, slow), 1.0);
}

TEST(Curves, IncrementPercent) {
  CoverageCurve base;
  base.final_covered = 1000;
  CoverageCurve cand;
  cand.final_covered = 1005;
  EXPECT_NEAR(coverage_increment_percent(base, cand), 0.5, 1e-9);
  EXPECT_NEAR(coverage_increment_percent(cand, base), -0.4975, 1e-3);
}

// --- parallel runs ------------------------------------------------------------------

TEST(ParallelRuns, ExecutesAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> counts(32);
  parallel_runs(32, [&](std::uint64_t r) { counts[r].fetch_add(1); });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelRuns, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_runs(4,
                    [&](std::uint64_t r) {
                      if (r == 2) {
                        throw std::runtime_error("boom");
                      }
                    }),
      std::runtime_error);
}

TEST(ParallelRuns, ZeroRunsIsNoop) {
  parallel_runs(0, [&](std::uint64_t) { FAIL(); });
}

// --- report renderers ------------------------------------------------------------------

TEST(Report, Table1Renders) {
  Table1Row row;
  row.bug = soc::BugId::kV7EbreakInstret;
  row.thehuzz_tests = 927;
  row.speedup[FuzzerKind::kMabEpsilonGreedy] = 308.89;
  row.speedup[FuzzerKind::kMabUcb] = 185.34;
  row.speedup[FuzzerKind::kMabExp3] = 73.16;
  std::ostringstream os;
  render_table1(os, {row});
  const std::string out = os.str();
  EXPECT_NE(out.find("V7"), std::string::npos);
  EXPECT_NE(out.find("308.89x"), std::string::npos);
  EXPECT_NE(out.find("CWE-1201"), std::string::npos);
}

TEST(Report, Fig3Renders) {
  CoverageCurve curve;
  curve.grid = {10, 20};
  curve.covered = {100, 200};
  curve.universe = 1000;
  curve.final_covered = 200;
  std::map<FuzzerKind, CoverageCurve> curves;
  curves[FuzzerKind::kTheHuzz] = curve;
  curves[FuzzerKind::kMabUcb] = curve;
  std::ostringstream os;
  render_fig3(os, "CVA6", curves);
  const std::string out = os.str();
  EXPECT_NE(out.find("CVA6"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(Report, Fig4Renders) {
  Fig4Row row;
  row.core = "Rocket Core";
  row.speedup[FuzzerKind::kMabExp3] = 3.05;
  row.increment_percent[FuzzerKind::kMabExp3] = 0.68;
  std::ostringstream os;
  render_fig4(os, {row});
  const std::string out = os.str();
  EXPECT_NE(out.find("Rocket Core"), std::string::npos);
  EXPECT_NE(out.find("3.05x"), std::string::npos);
}

TEST(Report, AsciiPlotHandlesFlatSeries) {
  CoverageCurve curve;
  curve.grid = {1, 2, 3};
  curve.covered = {5, 5, 5};
  std::ostringstream os;
  ascii_plot(os, {{"flat", &curve}});
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace mabfuzz::harness
