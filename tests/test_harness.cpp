// Harness tests: campaign construction for every registered policy,
// detection measurement, coverage curves, the Fig. 4 speedup/increment
// math, the shared worker pool and the report renderers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/thread_team.hpp"
#include "harness/campaign.hpp"
#include "harness/curves.hpp"
#include "harness/detection.hpp"
#include "harness/report.hpp"
#include "harness/worker_pool.hpp"

namespace mabfuzz::harness {
namespace {

CampaignConfig small_config(std::string_view policy) {
  CampaignConfig config;
  config.core = soc::CoreKind::kCva6;
  config.fuzzer = std::string(policy);
  config.max_tests = 150;
  return config;
}

std::string sanitized(std::string_view name) {
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += c;
    }
  }
  return out;
}

// --- campaign construction per policy ----------------------------------------

class CampaignBuild : public ::testing::TestWithParam<std::string_view> {};

TEST_P(CampaignBuild, ConstructsAndSteps) {
  Campaign campaign(small_config(GetParam()));
  EXPECT_FALSE(std::string(campaign.fuzzer().name()).empty());
  for (int i = 0; i < 20; ++i) {
    campaign.step();
  }
  EXPECT_EQ(campaign.tests_executed(), 20u);
  EXPECT_GT(campaign.covered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CampaignBuild,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const ::testing::TestParamInfo<std::string_view>& param_info) {
                           return sanitized(param_info.param);
                         });

TEST(PolicyLists, CoverThePaperSweeps) {
  EXPECT_EQ(kAllPolicies.size(), 5u);  // baseline + 4 MAB variants
  EXPECT_EQ(kMabPolicies.size(), 4u);  // thompson rides in the sweep now
  EXPECT_NE(std::find(kMabPolicies.begin(), kMabPolicies.end(), "thompson"),
            kMabPolicies.end());
}

// --- detection -------------------------------------------------------------------

TEST(Detection, FindsEasyBug) {
  CampaignConfig config = small_config("thehuzz");
  config.bugs = soc::BugSet::single(soc::BugId::kV5SilentLoadFault);
  config.max_tests = 500;
  const DetectionResult r =
      measure_detection(config, soc::BugId::kV5SilentLoadFault);
  EXPECT_TRUE(r.detected);
  EXPECT_GT(r.tests_to_detection, 0u);
  EXPECT_LE(r.tests_to_detection, 500u);
}

TEST(Detection, UndetectedIsCensored) {
  CampaignConfig config = small_config("thehuzz");
  config.bugs = soc::BugSet::none();  // nothing can ever mismatch
  config.max_tests = 50;
  const DetectionResult r =
      measure_detection(config, soc::BugId::kV4LostWriteback);
  EXPECT_FALSE(r.detected);
  EXPECT_EQ(r.tests_to_detection, 50u);
}

TEST(Detection, MultiRunAggregates) {
  CampaignConfig config = small_config("ucb");
  config.bugs = soc::BugSet::single(soc::BugId::kV5SilentLoadFault);
  config.max_tests = 500;
  const DetectionSummary s =
      measure_detection_multi(config, soc::BugId::kV5SilentLoadFault, 3);
  EXPECT_EQ(s.runs, 3u);
  EXPECT_EQ(s.detected_runs, 3u);
  EXPECT_GT(s.mean_tests, 0.0);
  EXPECT_EQ(s.per_run_tests.size(), 3u);
}

// --- curves -----------------------------------------------------------------------

TEST(Curves, MonotoneNonDecreasing) {
  CampaignConfig config = small_config("thehuzz");
  config.max_tests = 120;
  const CoverageCurve curve = measure_coverage(config, 10);
  ASSERT_FALSE(curve.grid.empty());
  for (std::size_t i = 1; i < curve.covered.size(); ++i) {
    EXPECT_GE(curve.covered[i], curve.covered[i - 1]);
  }
  EXPECT_EQ(curve.grid.back(), 120u);
  EXPECT_GT(curve.universe, 0u);
}

TEST(Curves, MultiRunAveragesOnSameGrid) {
  CampaignConfig config = small_config("thehuzz");
  config.max_tests = 60;
  const CoverageCurve curve = measure_coverage_multi(config, 20, 2);
  EXPECT_EQ(curve.grid.size(), 3u);  // 20, 40, 60
  EXPECT_GT(curve.final_covered, 0.0);
}

TEST(Curves, TestsToReach) {
  CoverageCurve curve;
  curve.grid = {10, 20, 30};
  curve.covered = {5, 15, 20};
  curve.final_covered = 20;
  EXPECT_EQ(tests_to_reach(curve, 5), std::optional<std::uint64_t>{10});
  EXPECT_EQ(tests_to_reach(curve, 6), std::optional<std::uint64_t>{20});
  EXPECT_EQ(tests_to_reach(curve, 21), std::nullopt);  // never reached
}

TEST(Curves, TestsToReachBoundaries) {
  // A grid point of 0 is a real answer, not a "never reached" sentinel.
  CoverageCurve curve;
  curve.grid = {0, 10};
  curve.covered = {3, 8};
  curve.final_covered = 8;
  EXPECT_EQ(tests_to_reach(curve, 0), std::optional<std::uint64_t>{0});
  EXPECT_EQ(tests_to_reach(curve, 3), std::optional<std::uint64_t>{0});
  EXPECT_EQ(tests_to_reach(curve, 8), std::optional<std::uint64_t>{10});
  EXPECT_EQ(tests_to_reach(curve, 8.1), std::nullopt);
  // Empty curve never reaches anything, even a zero target.
  EXPECT_EQ(tests_to_reach(CoverageCurve{}, 0), std::nullopt);
  // Exact equality at the last sample still counts as reached.
  EXPECT_EQ(tests_to_reach(curve, curve.final_covered),
            std::optional<std::uint64_t>{10});
}

TEST(Curves, SpeedupReachedAtZeroTestsIsFinite) {
  CoverageCurve base;
  base.grid = {100, 200};
  base.covered = {0, 0};
  base.final_covered = 0;
  CoverageCurve cand;
  cand.grid = {0, 100};
  cand.covered = {0, 5};
  cand.final_covered = 5;
  // Candidate satisfies the (degenerate) target at grid point 0; the old
  // 0-as-sentinel contract misclassified this as "never reached".
  const double speedup = coverage_speedup(base, cand);
  EXPECT_TRUE(std::isfinite(speedup));
  EXPECT_DOUBLE_EQ(speedup, 200.0);  // divisor clamped to 1 test
}

TEST(Curves, SpeedupMath) {
  CoverageCurve base;
  base.grid = {100, 200, 300};
  base.covered = {50, 70, 80};
  base.final_covered = 80;
  CoverageCurve fast;
  fast.grid = {100, 200, 300};
  fast.covered = {80, 90, 95};
  fast.final_covered = 95;
  // fast reaches 80 at its first sample (100 tests): 300/100 = 3x.
  EXPECT_DOUBLE_EQ(coverage_speedup(base, fast), 3.0);
  // A slower candidate that never reaches the target gets < 1.
  CoverageCurve slow;
  slow.grid = {100, 200, 300};
  slow.covered = {10, 20, 40};
  slow.final_covered = 40;
  EXPECT_LT(coverage_speedup(base, slow), 1.0);
}

TEST(Curves, IncrementPercent) {
  CoverageCurve base;
  base.final_covered = 1000;
  CoverageCurve cand;
  cand.final_covered = 1005;
  EXPECT_NEAR(coverage_increment_percent(base, cand), 0.5, 1e-9);
  EXPECT_NEAR(coverage_increment_percent(cand, base), -0.4975, 1e-3);
}

TEST(Curves, BuiltFromCampaignSnapshots) {
  std::vector<BatchSnapshot> snapshots = {{25, 10, 100}, {50, 30, 100}};
  const CoverageCurve curve = curve_from_snapshots(snapshots);
  EXPECT_EQ(curve.grid, (std::vector<std::uint64_t>{25, 50}));
  EXPECT_EQ(curve.covered, (std::vector<double>{10.0, 30.0}));
  EXPECT_EQ(curve.universe, 100u);
  EXPECT_DOUBLE_EQ(curve.final_covered, 30.0);
}

// --- worker pool --------------------------------------------------------------------

TEST(WorkerPool, ExecutesAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> counts(32);
  const PoolReport report =
      run_indexed(32, 0, [&](std::uint64_t r) { counts[r].fetch_add(1); });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tasks, 32u);
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(WorkerPool, CollectsEveryFailureAndKeepsRunning) {
  // The old parallel_runs helper recorded only the first exception and
  // dropped the rest; the pool must capture all of them, per index, while
  // the non-throwing tasks still run.
  std::vector<std::atomic<int>> counts(6);
  const PoolReport report = run_indexed(6, 3, [&](std::uint64_t r) {
    counts[r].fetch_add(1);
    if (r == 1) {
      throw std::runtime_error("boom-1");
    }
    if (r == 4) {
      throw std::runtime_error("boom-4");
    }
  });
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failed(), 2u);
  EXPECT_EQ(report.failures[0].index, 1u);  // sorted by index
  EXPECT_EQ(report.failures[0].message, "boom-1");
  EXPECT_EQ(report.failures[1].index, 4u);
  EXPECT_EQ(report.failures[1].message, "boom-4");
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1) << "a failure must not starve other tasks";
  }
}

TEST(WorkerPool, SingleWorkerCollectsFailuresToo) {
  const PoolReport report = run_indexed(3, 1, [&](std::uint64_t r) {
    if (r != 1) {
      throw std::invalid_argument("bad " + std::to_string(r));
    }
  });
  ASSERT_EQ(report.failed(), 2u);
  EXPECT_EQ(report.failures[0].message, "bad 0");
  EXPECT_EQ(report.failures[1].message, "bad 2");
}

TEST(WorkerPool, ZeroTasksIsNoop) {
  const PoolReport report =
      run_indexed(0, 0, [&](std::uint64_t) { FAIL(); });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.tasks, 0u);
}

TEST(WorkerPool, ConcurrencyAccessorReportsGrantedLanes) {
  // Unlimited budget (the default): the pool gets exactly what it asked
  // for, and concurrency() is the observable contract nested layers size
  // themselves against.
  WorkerPool pool(3);
  EXPECT_EQ(pool.concurrency(), 3u);
}

TEST(WorkerPool, NestedTeamsRespectBudgetAndNeverDeadlock) {
  // The oversubscription regression: trial workers that each spin up an
  // exec-worker team (the Campaign exec-workers path) must compose
  // through the process-wide thread budget — the accounted total stays
  // under the configured cap, and because reservation is non-blocking the
  // nesting can degrade lanes but never deadlock.
  common::set_thread_budget(4);
  std::atomic<unsigned> peak{0};
  std::atomic<int> inner_jobs{0};
  WorkerPool outer(3);  // wants 2 spawned threads; 1 (main) + 2 <= 4: granted
  EXPECT_EQ(outer.concurrency(), 3u);
  const PoolReport report = outer.run(6, [&](std::uint64_t) {
    common::ThreadTeam inner(8);  // wants 7 more; at most 1 slot is spare
    EXPECT_LE(inner.concurrency(), 8u);
    const unsigned in_use = common::threads_in_use();
    unsigned prev = peak.load();
    while (prev < in_use && !peak.compare_exchange_weak(prev, in_use)) {
    }
    std::atomic<int> lanes_ran{0};
    inner.run([&](unsigned) { lanes_ran.fetch_add(1); });
    EXPECT_EQ(lanes_ran.load(), static_cast<int>(inner.concurrency()));
    inner_jobs.fetch_add(1);
  });
  common::set_thread_budget(0);  // restore the unlimited default
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(inner_jobs.load(), 6);
  EXPECT_LE(peak.load(), 4u) << "nested teams oversubscribed the budget";
}

TEST(WorkerPool, ExhaustedBudgetDegradesToCallerThread) {
  // Cap = 1 leaves zero spare slots: every team shrinks to the caller's
  // own lane, work still completes, nothing blocks waiting for threads.
  common::set_thread_budget(1);
  WorkerPool pool(8);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<int> counts(16, 0);
  const PoolReport report =
      pool.run(16, [&](std::uint64_t r) { ++counts[r]; });
  common::set_thread_budget(0);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.workers, 1u);
  for (const int c : counts) {
    EXPECT_EQ(c, 1);
  }
}

// --- report renderers ------------------------------------------------------------------

TEST(Report, Table1Renders) {
  Table1Row row;
  row.bug = soc::BugId::kV7EbreakInstret;
  row.thehuzz_tests = 927;
  row.speedup["epsilon-greedy"] = 308.89;
  row.speedup["ucb"] = 185.34;
  row.speedup["exp3"] = 73.16;
  std::ostringstream os;
  render_table1(os, {row});
  const std::string out = os.str();
  EXPECT_NE(out.find("V7"), std::string::npos);
  EXPECT_NE(out.find("308.89x"), std::string::npos);
  EXPECT_NE(out.find("CWE-1201"), std::string::npos);
}

TEST(Report, Table1HonorsColumnOrder) {
  Table1Row row;
  row.bug = soc::BugId::kV1FenceIDecode;
  row.thehuzz_tests = 10;
  row.speedup["ucb"] = 2.0;
  row.speedup["exp3"] = 3.0;
  std::ostringstream os;
  render_table1(os, {row}, {"ucb", "exp3"});
  const std::string out = os.str();
  EXPECT_LT(out.find("ucb Speedup"), out.find("exp3 Speedup"));
}

TEST(Report, Fig3Renders) {
  CoverageCurve curve;
  curve.grid = {10, 20};
  curve.covered = {100, 200};
  curve.universe = 1000;
  curve.final_covered = 200;
  std::map<std::string, CoverageCurve> curves;
  curves["thehuzz"] = curve;
  curves["ucb"] = curve;
  std::ostringstream os;
  render_fig3(os, "CVA6", curves);
  const std::string out = os.str();
  EXPECT_NE(out.find("CVA6"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(Report, Fig4Renders) {
  Fig4Row row;
  row.core = "Rocket Core";
  row.speedup["exp3"] = 3.05;
  row.increment_percent["exp3"] = 0.68;
  std::ostringstream os;
  render_fig4(os, {row});
  const std::string out = os.str();
  EXPECT_NE(out.find("Rocket Core"), std::string::npos);
  EXPECT_NE(out.find("3.05x"), std::string::npos);
}

TEST(Report, AsciiPlotHandlesFlatSeries) {
  CoverageCurve curve;
  curve.grid = {1, 2, 3};
  curve.covered = {5, 5, 5};
  std::ostringstream os;
  ascii_plot(os, {{"flat", &curve}});
  EXPECT_FALSE(os.str().empty());
}

TEST(Report, ProgressObserverStreamsBatches) {
  CampaignConfig config = small_config("ucb");
  config.max_tests = 40;
  config.snapshot_every = 20;
  Campaign campaign(config);
  std::ostringstream os;
  ProgressObserver progress(os);
  campaign.add_observer(progress);
  campaign.run();
  const std::string out = os.str();
  EXPECT_NE(out.find("[20] covered"), std::string::npos);
  EXPECT_NE(out.find("[40] covered"), std::string::npos);
}

}  // namespace
}  // namespace mabfuzz::harness
