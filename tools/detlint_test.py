#!/usr/bin/env python3
"""Golden-fixture tests for tools/detlint.py.

Every file under tests/lint_fixtures/ is linted against the virtual repo
path named by its `// detlint-path:` directive (so artifact-path and
module-exemption rules apply exactly as they would in the tree), and the
findings must match the `// detlint-expect: <rule>[,<rule>]` markers
line-for-line. Files named pass_* must produce no findings; files named
fail_* must produce at least one.

Run directly or via CTest (registered as tier-1 `detlint_fixtures`).
Exit status: 0 = all fixtures behave, 1 = mismatch, 2 = fixture malformed.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import detlint  # noqa: E402

PATH_DIRECTIVE_RE = re.compile(r"//\s*detlint-path:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*detlint-expect:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "tests" / "lint_fixtures"


def check_fixture(path: Path) -> list:
    """Returns a list of error strings for one fixture (empty = pass)."""
    errors = []
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    directive = PATH_DIRECTIVE_RE.search(lines[0]) if lines else None
    if not directive:
        return [f"{path.name}: first line must carry '// detlint-path: "
                f"<virtual repo path>'"]
    virtual_path = directive.group(1)

    expected = set()
    for lineno, line in enumerate(lines, start=1):
        m = EXPECT_RE.search(line)
        if m:
            for rule in (r.strip() for r in m.group(1).split(",")):
                if rule not in detlint.RULES:
                    return [f"{path.name}:{lineno}: expect marker names "
                            f"unknown rule '{rule}'"]
                expected.add((lineno, rule))

    if path.name.startswith("pass_") and expected:
        return [f"{path.name}: pass_* fixtures must not carry expect markers"]
    if path.name.startswith("fail_") and not expected:
        return [f"{path.name}: fail_* fixtures need at least one expect "
                f"marker"]

    actual = {(f.line, f.rule) for f in detlint.lint_file(virtual_path, text)}

    for lineno, rule in sorted(expected - actual):
        errors.append(f"{path.name}:{lineno}: expected [{rule}] finding was "
                      f"not reported (as {virtual_path})")
    for lineno, rule in sorted(actual - expected):
        errors.append(f"{path.name}:{lineno}: unexpected [{rule}] finding "
                      f"(as {virtual_path})")
    return errors


def main() -> int:
    if not FIXTURE_DIR.is_dir():
        print(f"detlint_test: fixture dir {FIXTURE_DIR} missing",
              file=sys.stderr)
        return 2
    fixtures = sorted(p for p in FIXTURE_DIR.iterdir()
                      if p.suffix in detlint.CXX_SUFFIXES)
    if not fixtures:
        print("detlint_test: no fixtures found", file=sys.stderr)
        return 2
    if not any(p.name.startswith("pass_") for p in fixtures) or \
            not any(p.name.startswith("fail_") for p in fixtures):
        print("detlint_test: need both pass_* and fail_* fixtures",
              file=sys.stderr)
        return 2

    # Every rule in the catalogue must be exercised by at least one fixture
    # (either direction), so new rules cannot land untested.
    exercised = set()
    failures = []
    for fixture in fixtures:
        text = fixture.read_text(encoding="utf-8")
        for m in EXPECT_RE.finditer(text):
            exercised.update(r.strip() for r in m.group(1).split(","))
        for m in detlint.ALLOW_RE.finditer(text):
            exercised.update(r.strip() for r in m.group(1).split(","))
        for m in detlint.ALLOW_FILE_RE.finditer(text):
            exercised.update(r.strip() for r in m.group(1).split(","))
        failures.extend(check_fixture(fixture))

    uncovered = detlint.RULES.keys() - exercised
    for rule in sorted(uncovered):
        failures.append(f"rule '{rule}' has no fixture coverage "
                        f"(add a fail_* fixture with an expect marker)")

    for failure in failures:
        print(failure)
    verdict = "OK" if not failures else f"{len(failures)} problem(s)"
    print(f"detlint_test: {len(fixtures)} fixture(s): {verdict}",
          file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
