#!/usr/bin/env python3
"""detlint — the MABFuzz determinism & ownership linter.

The repo's load-bearing guarantee is that experiment and corpus artifacts
are byte-identical across 1/2/8 workers, any exec-batch value, and
save->load->save round trips (docs/ARCHITECTURE.md "Reproducibility
contract").  Runtime tests enforce that property after the fact; detlint
enforces the source-level invariants that make it true, so a stray
wall-clock read or unordered-container walk in an artifact path is caught
at lint time instead of as a flaky artifact diff.

Rules (see docs/STATIC_ANALYSIS.md for the full catalogue):

  nondet-source          no wall-clock / environment reads in artifact-path
                         files (the file set that feeds artifact emitters)
  unordered-container    no std::unordered_{map,set,...} in artifact-path
                         files: iteration order is unspecified
  rng-discipline         all randomness flows from common/rng per-trial
                         streams; <random> engines and distributions are
                         banned repo-wide (distributions are
                         implementation-defined => not reproducible)
  pragma-once            every header starts with #pragma once
  using-namespace-header no `using namespace` in headers
  context-read           Backend::execution_context() is a test/bench
                         introspection hook; library and example code must
                         read results from TestOutcome (ownership rule)
  outcome-in-loop        a TestOutcome declared inside a loop body defeats
                         the backend scratch-swap reuse pattern; hoist it
  context-per-thread     no static-storage Arena/ExecutionContext, and no
                         handing either type to a spawned thread outside
                         the backend: each exec lane owns exactly one
                         context (parallel run_batch sharding rule)

Suppressions:

  // detlint:allow(rule)        on the offending line, or alone on the
                                line directly above it
  // detlint:allow-file(rule)   anywhere in the file: whole-file waiver

Usage:

  tools/detlint.py [--root DIR] [paths...]   # default: src tests bench examples
  tools/detlint.py --list-rules

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import fnmatch
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Rule catalogue
# --------------------------------------------------------------------------

RULES = {
    "nondet-source":
        "wall-clock/environment read in an artifact-path file; artifacts "
        "must be byte-identical across runs (allow only for documented "
        "fields like elapsed_seconds)",
    "unordered-container":
        "unordered container in an artifact-path file; iteration order is "
        "unspecified and would leak into emitted artifacts",
    "rng-discipline":
        "randomness outside common/rng; every stochastic component must "
        "draw from a per-trial Xoshiro256StarStar stream "
        "(common::make_stream), and <random> distributions are "
        "implementation-defined",
    "pragma-once":
        "header does not start with #pragma once",
    "using-namespace-header":
        "`using namespace` in a header leaks into every includer",
    "context-read":
        "Backend::execution_context() outside tests/ and bench/; after "
        "run_test the scratch holds the caller's *previous* buffers — read "
        "results from the TestOutcome (docs/ARCHITECTURE.md ownership "
        "rules)",
    "outcome-in-loop":
        "TestOutcome constructed inside a loop; hoist it out and reuse it "
        "so the backend scratch swap stays allocation-free "
        "(docs/ARCHITECTURE.md ownership rules)",
    "context-per-thread":
        "Arena/ExecutionContext reachable from more than one thread; each "
        "exec lane owns exactly one context and arenas bind to their first "
        "allocating thread (docs/ARCHITECTURE.md \"Batched execution\")",
}

# Files that feed the deterministic artifact emitters (experiment JSON/CSV,
# coverage curves, detection reports, corpus serialization, BENCH_*.json).
# Nondeterminism in these files can silently change artifact bytes.
ARTIFACT_PATH_GLOBS = [
    "src/common/json.*",
    "src/harness/campaign.*",
    "src/harness/experiment.*",
    "src/harness/curves.*",
    "src/harness/report.*",
    "src/harness/detection.*",
    "src/harness/checkpoint.*",
    "src/harness/service.*",
    "src/fuzz/corpus.*",
    "bench/*",
]

# The one module allowed to name raw generators: it *is* the RNG.
RNG_EXEMPT_GLOBS = ["src/common/rng.*"]

# execution_context() is legitimate in the tests/benches that inspect
# decode-cache counters, and in the backend that defines it.
CONTEXT_READ_ALLOWED_GLOBS = ["tests/*", "bench/*", "src/fuzz/backend.*"]

# outcome-in-loop applies to library and example code; equivalence tests
# construct fresh outcomes per test on purpose (reused vs fresh suites).
OUTCOME_RULE_GLOBS = ["src/*", "examples/*"]

# context-per-thread: the backend is the one module that replicates
# ExecutionContexts across lanes (it owns the shard -> lane mapping), and
# tests/benches deliberately cross threads to exercise the ownership traps.
CONTEXT_THREAD_ALLOWED_GLOBS = ["tests/*", "bench/*", "src/fuzz/backend.*"]

DEFAULT_SCAN_ROOTS = ["src", "tests", "bench", "examples"]
EXCLUDED_DIR_NAMES = {"lint_fixtures", "build"}
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# --------------------------------------------------------------------------
# Token tables
# --------------------------------------------------------------------------

NONDET_TOKENS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime"),
    # Free-function time()/clock(): reject `time(` not preceded by an
    # identifier char, member access, or arrow (so elapsed_time(, x.time(
    # and t->time( stay legal).
    (re.compile(r"(?<![\w.>])time\s*\("), "time()"),
    (re.compile(r"(?<![\w.>])clock\s*\("), "clock()"),
    (re.compile(r"\bgetenv\b"), "getenv"),
    (re.compile(r"\b(?:localtime|gmtime|strftime|mktime)\b"),
     "calendar-time function"),
]

RNG_TOKENS = [
    (re.compile(r"\bstd::rand\b|(?<![\w.>])s?rand\s*\("), "C rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\branlux(?:24|48)\b"), "std::ranlux"),
    (re.compile(
        r"\b(?:uniform_int|uniform_real|normal|lognormal|bernoulli|poisson|"
        r"exponential|geometric|binomial|negative_binomial|gamma|weibull|"
        r"extreme_value|chi_squared|cauchy|fisher_f|student_t|discrete|"
        r"piecewise_constant|piecewise_linear)_distribution\b"),
     "<random> distribution (implementation-defined sequences)"),
    (re.compile(r"#\s*include\s*<random>"), "#include <random>"),
    (re.compile(r"\brandom_shuffle\b"), "std::random_shuffle"),
]

UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
CONTEXT_READ_RE = re.compile(r"\bexecution_context\s*\(")
OUTCOME_DECL_RE = re.compile(
    r"(?:^\s*|[{};]\s*)(?:(?:::)?(?:mabfuzz::)?fuzz::)?TestOutcome\s+\w+\s*"
    r"(?:;|\{\s*\}\s*;|=)")
LOOP_KEYWORD_RE = re.compile(r"\b(for|while|do)\b")

# context-per-thread: a static-storage Arena/ExecutionContext is reachable
# from every thread in the process, and naming either type in a
# thread-spawn expression hands one across the lane boundary.
STATIC_CONTEXT_RE = re.compile(
    r"\bstatic\s+(?:inline\s+)?(?:const(?:expr)?\s+)?(?:\w+::)*"
    r"(?:Arena|ExecutionContext)\b")
THREAD_SPAWN_RE = re.compile(
    r"\bstd::(?:jthread|thread|async)\b|\bpthread_create\b")
CONTEXT_TYPE_RE = re.compile(r"\b(?:Arena|ExecutionContext)\b")

ALLOW_RE = re.compile(r"//\s*detlint:allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"//\s*detlint:allow-file\(([^)]*)\)")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _matches_any(relpath: str, globs: list[str]) -> bool:
    return any(fnmatch.fnmatch(relpath, g) for g in globs)


def _parse_rule_list(raw: str, path: str, line: int):
    rules = {r.strip() for r in raw.split(",") if r.strip()}
    unknown = rules - RULES.keys()
    if unknown:
        raise SystemExit(
            f"{path}:{line}: detlint suppression names unknown rule(s): "
            f"{', '.join(sorted(unknown))} (run --list-rules)")
    return rules


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Returns per-line code with comments and string/char literals blanked.

    Columns are preserved (replaced by spaces) so finding positions stay
    meaningful. Handles // and /* */ comments, "..." and '...' literals
    with escapes. Raw strings are treated as plain strings, which is fine
    for linting purposes.
    """
    out = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif line.startswith("//", i):
                buf.append(" " * (n - i))
                break
            elif line.startswith("/*", i):
                in_block = True
                buf.append("  ")
                i += 2
            elif line[i] in "\"'":
                quote = line[i]
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                    elif line[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        i += 1
            else:
                buf.append(line[i])
                i += 1
        out.append("".join(buf))
    return out


class _Suppressions:
    """Parses detlint:allow / detlint:allow-file directives."""

    def __init__(self, path: str, lines: list[str], code: list[str]):
        self.file_rules: set = set()
        self.line_rules: dict = {}  # line number -> set of rules
        for idx, raw in enumerate(lines, start=1):
            m = ALLOW_FILE_RE.search(raw)
            if m:
                self.file_rules |= _parse_rule_list(m.group(1), path, idx)
            m = ALLOW_RE.search(raw)
            if m:
                rules = _parse_rule_list(m.group(1), path, idx)
                self.line_rules.setdefault(idx, set()).update(rules)
                # A directive alone on its line covers the next line.
                if code[idx - 1].strip() == "":
                    self.line_rules.setdefault(idx + 1, set()).update(rules)

    def active(self, line: int, rule: str) -> bool:
        return rule in self.file_rules or rule in self.line_rules.get(
            line, set())


def _scan_outcome_in_loop(code: list[str]):
    """Yields line numbers where a TestOutcome is declared inside a loop.

    Lightweight brace/paren tracking: a `for`/`while`/`do` keyword arms the
    next top-level `{` as a loop scope; declarations while any loop scope
    is open are findings. Good enough for lint (no macros games in this
    repo), and locked in by the lint fixtures.
    """
    brace_stack = []  # True = loop scope
    pending_loop = False
    paren_depth = 0
    for lineno, line in enumerate(code, start=1):
        if any(brace_stack) and OUTCOME_DECL_RE.search(line):
            yield lineno
        i = 0
        while i < len(line):
            ch = line[i]
            if ch == "(":
                paren_depth += 1
            elif ch == ")":
                paren_depth = max(0, paren_depth - 1)
            elif ch == "{":
                brace_stack.append(pending_loop)
                pending_loop = False
            elif ch == "}":
                if brace_stack:
                    brace_stack.pop()
            elif ch == ";" and paren_depth == 0:
                pending_loop = False
            elif ch.isalpha():
                m = LOOP_KEYWORD_RE.match(line, i)
                if m and (i == 0 or not (line[i - 1].isalnum()
                                         or line[i - 1] == "_")):
                    pending_loop = True
                    i = m.end()
                    continue
            i += 1


def lint_file(relpath: str, text: str) -> list:
    """Lints one file; relpath is repo-relative with forward slashes."""
    relpath = relpath.replace("\\", "/")
    lines = text.splitlines()
    code = strip_comments_and_strings(lines)
    suppressions = _Suppressions(relpath, lines, code)
    findings = []

    def report(lineno: int, rule: str, detail: str):
        if not suppressions.active(lineno, rule):
            findings.append(Finding(relpath, lineno, rule, detail))

    is_header = relpath.endswith((".hpp", ".hh", ".h"))
    artifact_path = _matches_any(relpath, ARTIFACT_PATH_GLOBS)
    rng_exempt = _matches_any(relpath, RNG_EXEMPT_GLOBS)
    context_allowed = _matches_any(relpath, CONTEXT_READ_ALLOWED_GLOBS)
    outcome_rule = _matches_any(relpath, OUTCOME_RULE_GLOBS)
    context_thread_allowed = _matches_any(relpath,
                                          CONTEXT_THREAD_ALLOWED_GLOBS)

    for lineno, cline in enumerate(code, start=1):
        if artifact_path:
            for token_re, name in NONDET_TOKENS:
                if token_re.search(cline):
                    report(lineno, "nondet-source",
                           f"{name}: {RULES['nondet-source']}")
            if UNORDERED_RE.search(cline):
                report(lineno, "unordered-container",
                       RULES["unordered-container"])
        if not rng_exempt:
            for token_re, name in RNG_TOKENS:
                if token_re.search(cline):
                    report(lineno, "rng-discipline",
                           f"{name}: {RULES['rng-discipline']}")
        if is_header and USING_NAMESPACE_RE.search(cline):
            report(lineno, "using-namespace-header",
                   RULES["using-namespace-header"])
        if not context_allowed and CONTEXT_READ_RE.search(cline):
            report(lineno, "context-read", RULES["context-read"])
        if not context_thread_allowed:
            if STATIC_CONTEXT_RE.search(cline):
                report(lineno, "context-per-thread",
                       "static-storage declaration: "
                       + RULES["context-per-thread"])
            elif (THREAD_SPAWN_RE.search(cline)
                  and CONTEXT_TYPE_RE.search(cline)):
                report(lineno, "context-per-thread",
                       "thread spawn names a per-lane context type: "
                       + RULES["context-per-thread"])

    if is_header:
        first_code = next(
            ((i, c) for i, c in enumerate(code, start=1) if c.strip()),
            None)
        if first_code is None or not PRAGMA_ONCE_RE.match(first_code[1]):
            report(first_code[0] if first_code else 1, "pragma-once",
                   RULES["pragma-once"])

    if outcome_rule:
        for lineno in _scan_outcome_in_loop(code):
            report(lineno, "outcome-in-loop", RULES["outcome-in-loop"])

    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def iter_source_files(root: Path, paths: list[str]):
    targets = [root / p for p in paths] if paths else [
        root / p for p in DEFAULT_SCAN_ROOTS
    ]
    for target in targets:
        if target.is_file():
            yield target
            continue
        if not target.is_dir():
            continue
        for path in sorted(target.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            if EXCLUDED_DIR_NAMES & set(path.relative_to(root).parts[:-1]):
                continue
            yield path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="detlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent dir)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("paths", nargs="*",
                        help="files or directories relative to the root "
                             "(default: %s)" % " ".join(DEFAULT_SCAN_ROOTS))
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name]}")
        return 0

    root = Path(args.root) if args.root else Path(
        __file__).resolve().parent.parent
    if not root.is_dir():
        print(f"detlint: root {root} is not a directory", file=sys.stderr)
        return 2

    findings = []
    scanned = 0
    for path in iter_source_files(root, args.paths):
        scanned += 1
        relpath = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except UnicodeDecodeError:
            print(f"detlint: {relpath}: not valid UTF-8", file=sys.stderr)
            return 2
        findings.extend(lint_file(relpath, text))

    for finding in findings:
        print(finding.render())
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"detlint: scanned {scanned} file(s): {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
