#!/usr/bin/env python3
"""End-to-end crash-safety smoke for `mabfuzz_cli serve`.

Drives the campaign service daemon over its Unix socket the way an
operator would — and the way no unit test can: with a real SIGKILL.

  1. Reference: serve, submit two campaigns, drain, shutdown. Record the
     artifact bytes of an uninterrupted run.
  2. Victim: serve with periodic checkpointing, submit the same two
     campaigns, wait until both have streamed a `checkpoint` event, then
     SIGKILL the server mid-run.
  3. Recovery: start a fresh server, `resume-checkpoint` both jobs from
     the files the dead server left behind, drain, shutdown.

Validated along the way: every stdout line of every server is one
parseable JSON event object, replies follow the ok/error wire protocol,
and the recovered run's artifacts are byte-identical to the reference —
the determinism contract surviving a kill -9.

Usage: tools/service_smoke.py [--cli PATH] [--workdir DIR]
"""

import argparse
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time

JOBS = {
    # name -> (campaign pairs, max_tests). Two different policies and cores
    # so the two jobs exercise different code paths concurrently.
    "smoke-ucb": ("fuzzer=ucb core=rocket tests=20000 seed=7", 20000),
    "smoke-huzz": ("fuzzer=thehuzz core=cva6 tests=15000 seed=3", 15000),
}
CHECKPOINT_EVERY = 1000
DEADLINE = 120.0  # seconds; every wait below shares this cap


def fail(message):
    print(f"service_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class ServeClient:
    """Line-oriented client for the serve control socket."""

    def __init__(self, path, deadline):
        self.sock = None
        while self.sock is None:
            try:
                self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self.sock.connect(str(path))
            except OSError:
                self.sock = None
                if time.monotonic() > deadline:
                    fail(f"socket {path} never became connectable")
                time.sleep(0.05)
        self.sock.settimeout(DEADLINE)
        self.buffer = b""

    def command(self, line):
        """Sends one command, returns its one reply line."""
        self.sock.sendall(line.encode() + b"\n")
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(4096)
            if not chunk:
                fail(f"server hung up mid-reply to {line!r}")
            self.buffer += chunk
        reply, _, self.buffer = self.buffer.partition(b"\n")
        return reply.decode()

    def expect_ok(self, line):
        reply = self.command(line)
        if not reply.startswith("ok"):
            fail(f"command {line!r} got {reply!r}")
        return reply

    def close(self):
        self.sock.close()


def start_server(cli, events_path, sock_path, checkpoint_dir=None):
    argv = [str(cli), "serve", "--socket", str(sock_path), "--slice", "100",
            "--service-workers", "2"]
    if checkpoint_dir is not None:
        argv += ["--checkpoint-dir", str(checkpoint_dir),
                 "--checkpoint-every", str(CHECKPOINT_EVERY)]
    events = open(events_path, "wb")
    return subprocess.Popen(argv, stdout=events, stderr=subprocess.PIPE), events


def parse_events(events_path, context):
    """Every stdout line must be one JSON object with an `event` key."""
    events = []
    for index, line in enumerate(pathlib.Path(events_path).read_bytes().splitlines()):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as error:
            fail(f"{context}: stdout line {index + 1} is not JSON "
                 f"({error}): {line[:120]!r}")
        if not isinstance(doc, dict) or "event" not in doc:
            fail(f"{context}: line {index + 1} lacks an `event` key: {doc}")
        events.append(doc)
    return events


def submit_all(client):
    for name, (pairs, _) in JOBS.items():
        reply = client.expect_ok(
            f"submit tenant=smoke job={name} artifact-out={name} {pairs}")
        if reply != f"ok submitted {name}":
            fail(f"unexpected submit reply {reply!r}")


def read_artifacts(directory):
    out = {}
    for name in JOBS:
        for ext in (".json", ".csv"):
            path = pathlib.Path(directory) / (name + ext)
            if not path.is_file():
                fail(f"missing artifact {path}")
            out[name + ext] = path.read_bytes()
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", default="examples/example_mabfuzz_cli",
                        help="path to the built mabfuzz CLI")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args()

    cli = pathlib.Path(args.cli).resolve()
    if not cli.is_file():
        fail(f"CLI not found at {cli} (build it, or pass --cli)")
    workdir = pathlib.Path(args.workdir or tempfile.mkdtemp(prefix="mabfuzz-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    deadline = time.monotonic() + DEADLINE

    # --- 1. uninterrupted reference run ---------------------------------------
    ref_dir = workdir / "reference"
    ref_dir.mkdir(exist_ok=True)
    # The server resolves relative artifact-out prefixes against its own
    # cwd, so move there before spawning it.
    os.chdir(ref_dir)
    server, events_file = start_server(cli, ref_dir / "events.jsonl",
                                       ref_dir / "ctl.sock")
    client = ServeClient(ref_dir / "ctl.sock", deadline)
    submit_all(client)
    client.expect_ok("drain")
    status = client.expect_ok("status")
    for name, (_, tests) in JOBS.items():
        if f"{name}:done:{tests}/{tests}" not in status:
            fail(f"reference status missing completed {name}: {status!r}")
    client.expect_ok("shutdown")
    client.close()
    if server.wait(timeout=DEADLINE) != 0:
        fail(f"reference server exited {server.returncode}")
    events_file.close()
    ref_events = parse_events(ref_dir / "events.jsonl", "reference")
    done = [e for e in ref_events if e["event"] == "done"]
    if {e["job"] for e in done} != set(JOBS):
        fail(f"reference run missing done events: {done}")
    reference = read_artifacts(ref_dir)
    print(f"service_smoke: reference OK ({len(ref_events)} events)")

    # --- 2. victim run, SIGKILLed mid-campaign --------------------------------
    kill_dir = workdir / "victim"
    kill_dir.mkdir(exist_ok=True)
    ckpt_dir = kill_dir / "checkpoints"
    ckpt_dir.mkdir(exist_ok=True)
    os.chdir(kill_dir)
    server, events_file = start_server(cli, kill_dir / "events.jsonl",
                                       kill_dir / "ctl.sock", ckpt_dir)
    client = ServeClient(kill_dir / "ctl.sock", deadline)
    submit_all(client)
    # Wait until every job has a checkpoint on disk but none has finished.
    while True:
        events = parse_events(kill_dir / "events.jsonl", "victim")
        checkpointed = {e["job"] for e in events if e["event"] == "checkpoint"}
        finished = {e["job"] for e in events if e["event"] == "done"}
        if finished:
            fail(f"jobs finished before the kill landed: {finished} "
                 "(raise JOBS test counts)")
        if checkpointed == set(JOBS):
            break
        if time.monotonic() > deadline:
            fail(f"timed out waiting for checkpoints (have {checkpointed})")
        time.sleep(0.02)
    server.send_signal(signal.SIGKILL)
    server.wait()
    events_file.close()
    client.close()
    parse_events(kill_dir / "events.jsonl", "victim post-kill")  # still valid JSON
    checkpoints = {name: ckpt_dir / f"{name}.ckpt" for name in JOBS}
    for name, path in checkpoints.items():
        if not path.is_file():
            fail(f"no checkpoint file for {name} after SIGKILL")
    print("service_smoke: victim SIGKILLed with both jobs checkpointed")

    # --- 3. recovery: resume both checkpoints in a fresh server ---------------
    server, events_file = start_server(cli, kill_dir / "recovery.jsonl",
                                       kill_dir / "ctl.sock", ckpt_dir)
    client = ServeClient(kill_dir / "ctl.sock", deadline)
    for name, path in checkpoints.items():
        reply = client.expect_ok(f"resume-checkpoint {path}")
        if reply != f"ok resumed {name}":
            fail(f"unexpected resume reply {reply!r}")
    client.expect_ok("drain")
    status = client.expect_ok("status")
    for name, (_, tests) in JOBS.items():
        if f"{name}:done:{tests}/{tests}" not in status:
            fail(f"recovered status missing completed {name}: {status!r}")
    client.expect_ok("shutdown")
    client.close()
    if server.wait(timeout=DEADLINE) != 0:
        fail(f"recovery server exited {server.returncode}")
    events_file.close()
    recovery_events = parse_events(kill_dir / "recovery.jsonl", "recovery")
    if {e["job"] for e in recovery_events if e["event"] == "done"} != set(JOBS):
        fail("recovery run did not finish both jobs")
    for name, path in checkpoints.items():
        if path.exists():
            fail(f"settled job {name} left its checkpoint behind: {path}")

    # --- 4. the contract: recovered artifacts == reference bytes --------------
    recovered = read_artifacts(kill_dir)
    for key, expected in reference.items():
        if recovered[key] != expected:
            fail(f"artifact {key} differs between the reference run and the "
                 "SIGKILL+resume run — checkpoint recovery is not exact")
    print(f"service_smoke: PASS — {len(reference)} artifacts byte-identical "
          "across SIGKILL + resume")


if __name__ == "__main__":
    main()
