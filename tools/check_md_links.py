#!/usr/bin/env python3
"""Markdown link checker: every relative link in the repo's *.md files must
point at a file or directory that exists.

Checked: inline links/images `[text](target)` whose target is not an
external URL (http/https/mailto) or a pure in-page anchor (#...). A
`path#anchor` target is checked for the path only — anchors are not
resolved. Fenced code blocks are skipped (they hold example markup, not
navigation).

Also enforces the docs/ presence contract: ARCHITECTURE.md, ARTIFACTS.md
and EXTENDING.md must exist.

Usage: python3 tools/check_md_links.py [repo-root]   (default: cwd)
Exit status: 0 clean, 1 with one "file:line: broken link" per problem.
"""

import re
import sys
from pathlib import Path

REQUIRED_DOCS = ["docs/ARCHITECTURE.md", "docs/ARTIFACTS.md", "docs/EXTENDING.md"]
SKIP_DIRS = {"build", "build-asan", "build-release", ".git"}
# Machine-scraped reference material (arxiv extracts), not navigable docs.
SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE = re.compile(r"^\s*(```|~~~)")


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        if path.name in SKIP_FILES:
            continue
        yield path


def check_file(path: Path, root: Path):
    problems = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            base = root if rel.startswith("/") else path.parent
            if not (base / rel.lstrip("/")).exists():
                problems.append(f"{path.relative_to(root)}:{lineno}: broken link '{target}'")
    return problems


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    problems = [f"missing required doc: {doc}"
                for doc in REQUIRED_DOCS if not (root / doc).is_file()]
    checked = 0
    for path in markdown_files(root):
        problems.extend(check_file(path, root))
        checked += 1
    for problem in problems:
        print(problem)
    print(f"checked {checked} markdown files: "
          f"{'OK' if not problems else f'{len(problems)} problem(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
